"""Linear expressions over program variables with exact rational coefficients.

A :class:`LinExpr` represents ``c0 + c1*x1 + ... + cn*xn`` where the ``xi``
are program-variable names and all coefficients are ``Fraction``.  They are
the building blocks of

* logical contexts (conjunctions of ``LinExpr >= 0``),
* interval atoms ``max(0, LinExpr)`` used as base functions, and
* guard/assignment expressions after lowering from the AST.

Instances are immutable and hashable so they can serve as dictionary keys.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, Mapping, Optional, Tuple, Union

from repro.utils.rationals import Number, pretty_fraction, to_fraction

State = Mapping[str, Union[int, float, Fraction]]

_ZERO = Fraction(0)


class LinExpr:
    """An immutable linear expression ``constant + sum(coeff_v * v)``."""

    __slots__ = ("_coeffs", "_coeff_map", "_const", "_hash")

    def __init__(self, coeffs: Optional[Mapping[str, Number]] = None,
                 const: Number = 0) -> None:
        clean: Dict[str, Fraction] = {}
        if coeffs:
            for var, coeff in coeffs.items():
                frac = to_fraction(coeff)
                if frac != 0:
                    clean[str(var)] = frac
        self._coeffs: Tuple[Tuple[str, Fraction], ...] = tuple(sorted(clean.items()))
        self._coeff_map: Dict[str, Fraction] = clean
        self._const: Fraction = to_fraction(const)
        self._hash: Optional[int] = None

    # -- constructors -----------------------------------------------------

    @classmethod
    def var(cls, name: str) -> "LinExpr":
        """The expression consisting of a single variable."""
        return cls({name: 1})

    @classmethod
    def const(cls, value: Number) -> "LinExpr":
        """A constant expression."""
        return cls({}, value)

    @classmethod
    def zero(cls) -> "LinExpr":
        return cls({}, 0)

    @classmethod
    def _raw(cls, clean: Dict[str, Fraction], const: Fraction) -> "LinExpr":
        """Wrap an already-clean coefficient dict without re-validating it.

        Internal fast path for the arithmetic operators: ``clean`` must map
        variable names to non-zero Fractions and is owned by the result.
        """
        self = object.__new__(cls)
        self._coeffs = tuple(sorted(clean.items()))
        self._coeff_map = clean
        self._const = const
        self._hash = None
        return self

    # -- accessors --------------------------------------------------------

    @property
    def coeffs(self) -> Dict[str, Fraction]:
        """A fresh dict of the variable coefficients (non-zero only)."""
        return dict(self._coeffs)

    @property
    def coeff_items(self) -> Tuple[Tuple[str, Fraction], ...]:
        """The coefficients as a sorted ``(var, coeff)`` tuple (no copy)."""
        return self._coeffs

    @property
    def const_term(self) -> Fraction:
        return self._const

    def coefficient(self, var: str) -> Fraction:
        return self._coeff_map.get(var, _ZERO)

    def variables(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self._coeffs)

    def is_constant(self) -> bool:
        return not self._coeffs

    def is_zero(self) -> bool:
        return not self._coeffs and self._const == 0

    # -- algebra -----------------------------------------------------------

    def __add__(self, other: Union["LinExpr", Number]) -> "LinExpr":
        other_expr = _as_linexpr(other)
        coeffs = dict(self._coeff_map)
        for var, coeff in other_expr._coeffs:
            value = coeffs.get(var)
            value = coeff if value is None else value + coeff
            if value == 0:
                del coeffs[var]
            else:
                coeffs[var] = value
        return LinExpr._raw(coeffs, self._const + other_expr._const)

    __radd__ = __add__

    def __neg__(self) -> "LinExpr":
        return LinExpr._raw({var: -coeff for var, coeff in self._coeffs},
                            -self._const)

    def __sub__(self, other: Union["LinExpr", Number]) -> "LinExpr":
        return self + (-_as_linexpr(other))

    def __rsub__(self, other: Union["LinExpr", Number]) -> "LinExpr":
        return _as_linexpr(other) + (-self)

    def __mul__(self, scalar: Number) -> "LinExpr":
        factor = to_fraction(scalar)
        if factor == 0:
            return LinExpr.zero()
        return LinExpr._raw({var: coeff * factor for var, coeff in self._coeffs},
                            self._const * factor)

    __rmul__ = __mul__

    def __truediv__(self, scalar: Number) -> "LinExpr":
        factor = to_fraction(scalar)
        if factor == 0:
            raise ZeroDivisionError("division of a linear expression by zero")
        return self * (Fraction(1) / factor)

    def scale(self, scalar: Number) -> "LinExpr":
        return self * scalar

    # -- substitution and evaluation --------------------------------------

    def substitute(self, var: str, replacement: "LinExpr") -> "LinExpr":
        """Return ``self`` with every occurrence of ``var`` replaced."""
        coeff = self.coefficient(var)
        if coeff == 0:
            return self
        remaining = {name: value for name, value in self._coeffs if name != var}
        base = LinExpr._raw(remaining, self._const)
        return base + replacement * coeff

    def substitute_all(self, mapping: Mapping[str, "LinExpr"]) -> "LinExpr":
        result = self
        for var, replacement in mapping.items():
            result = result.substitute(var, replacement)
        return result

    def rename(self, mapping: Mapping[str, str]) -> "LinExpr":
        coeffs: Dict[str, Fraction] = {}
        for var, coeff in self._coeffs:
            target = mapping.get(var, var)
            coeffs[target] = coeffs.get(target, Fraction(0)) + coeff
        return LinExpr(coeffs, self._const)

    def evaluate(self, state: State) -> Fraction:
        """Evaluate under ``state``; missing variables raise ``KeyError``."""
        total = self._const
        for var, coeff in self._coeffs:
            total += coeff * to_fraction(state[var])
        return total

    # -- normalisation -----------------------------------------------------

    def normalised(self) -> Tuple[Fraction, "LinExpr"]:
        """Split into ``(scale, canonical)`` with ``scale > 0``.

        Two expressions that are positive multiples of each other share the
        same canonical form -- this makes ``max(0, 2x) == 2 * max(0, x)``
        representable with one interval atom.  Constant expressions return
        scale 1 and themselves.
        """
        if not self._coeffs:
            return Fraction(1), self
        lead = self._coeffs[0][1]
        scale = abs(lead)
        if scale == 1:
            return scale, self
        canonical = self / scale
        return scale, canonical

    # -- comparisons / hashing ---------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LinExpr):
            return NotImplemented
        return self._coeffs == other._coeffs and self._const == other._const

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._coeffs, self._const))
        return self._hash

    def sort_key(self) -> Tuple:
        return (self._coeffs, self._const)

    # -- rendering -----------------------------------------------------------

    def __repr__(self) -> str:
        return f"LinExpr({self})"

    def __str__(self) -> str:
        parts = []
        for var, coeff in self._coeffs:
            if coeff == 1:
                parts.append(var if not parts else f"+ {var}")
            elif coeff == -1:
                parts.append(f"-{var}" if not parts else f"- {var}")
            else:
                rendered = pretty_fraction(abs(coeff))
                sign = "-" if coeff < 0 else "+"
                if not parts:
                    prefix = "-" if coeff < 0 else ""
                    parts.append(f"{prefix}{rendered}*{var}")
                else:
                    parts.append(f"{sign} {rendered}*{var}")
        if self._const != 0 or not parts:
            rendered = pretty_fraction(abs(self._const))
            if not parts:
                prefix = "-" if self._const < 0 else ""
                parts.append(f"{prefix}{rendered}")
            else:
                sign = "-" if self._const < 0 else "+"
                parts.append(f"{sign} {rendered}")
        return " ".join(parts)


def _as_linexpr(value: Union[LinExpr, Number]) -> LinExpr:
    if isinstance(value, LinExpr):
        return value
    return LinExpr.const(value)


def linear_combination(terms: Iterable[Tuple[Number, LinExpr]]) -> LinExpr:
    """Return ``sum(coeff * expr)`` over the given pairs."""
    total = LinExpr.zero()
    for coeff, expr in terms:
        total = total + expr * coeff
    return total
