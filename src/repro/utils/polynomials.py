"""Interval atoms, monomials and polynomials: the base functions of the analysis.

The paper's potential functions are linear combinations of *base functions*
picked among the monomials

    M := 1 | x | M1*M2 | max(0, P)        (Sec. 7.1)

In this implementation a base function is a :class:`Monomial`: a product of
:class:`IntervalAtom` factors, each denoting ``max(0, D)`` for a linear
expression ``D`` over program variables.  The paper's interval notation
``|[L, U]|`` stands for ``max(0, U - L)``; we store the difference ``D`` in a
canonical form and reconstruct the interval notation for printing.

:class:`Polynomial` is a finite linear combination of monomials with rational
coefficients.  Polynomials are the concrete potential functions (after the LP
has been solved), the rewrite functions used in ``Q:Weaken``, and the symbolic
cost of ``tick`` commands with expression arguments.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, Mapping, Optional, Tuple, Union

from repro.utils.linear import LinExpr, State
from repro.utils.rationals import Number, pretty_fraction, to_fraction


class IntervalAtom:
    """``max(0, D)`` for a canonical (scale-normalised) linear expression D."""

    __slots__ = ("_diff", "_hash")

    def __init__(self, diff: LinExpr) -> None:
        if diff.is_constant():
            raise ValueError(
                "constant interval atoms are not allowed; fold them into the "
                "constant monomial instead (use atom_product)")
        self._diff = diff
        self._hash: Optional[int] = None

    @property
    def diff(self) -> LinExpr:
        """The linear expression ``D`` such that the atom denotes ``max(0, D)``."""
        return self._diff

    def evaluate(self, state: State) -> Fraction:
        value = self._diff.evaluate(state)
        return value if value > 0 else Fraction(0)

    def variables(self) -> Tuple[str, ...]:
        return self._diff.variables()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalAtom):
            return NotImplemented
        return self._diff == other._diff

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(("IntervalAtom", self._diff))
        return self._hash

    def sort_key(self) -> Tuple:
        return self._diff.sort_key()

    def __repr__(self) -> str:
        return f"IntervalAtom({self._diff})"

    def __str__(self) -> str:
        lower_terms: Dict[str, Fraction] = {}
        upper_terms: Dict[str, Fraction] = {}
        for var, coeff in self._diff.coeffs.items():
            if coeff > 0:
                upper_terms[var] = coeff
            else:
                lower_terms[var] = -coeff
        const = self._diff.const_term
        lower_const = Fraction(0)
        upper_const = Fraction(0)
        if const >= 0:
            upper_const = const
        else:
            lower_const = -const
        lower = LinExpr(lower_terms, lower_const)
        upper = LinExpr(upper_terms, upper_const)
        return f"|[{lower}, {upper}]|"


AtomTerm = Tuple[Fraction, Optional[IntervalAtom]]


def atom_product(diff: LinExpr) -> AtomTerm:
    """Smart constructor: ``max(0, diff)`` as ``scale * atom`` (or a constant).

    Returns ``(scale, atom)`` with ``scale > 0`` such that
    ``max(0, diff) == scale * max(0, atom.diff)``.  If ``diff`` is constant,
    returns ``(max(0, diff), None)`` meaning the value folds into the constant
    monomial.
    """
    if diff.is_constant():
        value = diff.const_term
        return (value if value > 0 else Fraction(0), None)
    scale, canonical = diff.normalised()
    return scale, IntervalAtom(canonical)


class Monomial:
    """A product of interval atoms (the empty product is the constant ``1``)."""

    __slots__ = ("_factors", "_hash")

    def __init__(self, factors: Union[None, Iterable[IntervalAtom],
                                      Mapping[IntervalAtom, int]] = None) -> None:
        counts: Dict[IntervalAtom, int] = {}
        if factors is None:
            pass
        elif isinstance(factors, Mapping):
            for atom, power in factors.items():
                if power < 0:
                    raise ValueError("monomial powers must be non-negative")
                if power:
                    counts[atom] = counts.get(atom, 0) + int(power)
        else:
            for atom in factors:
                counts[atom] = counts.get(atom, 0) + 1
        self._factors: Tuple[Tuple[IntervalAtom, int], ...] = tuple(
            sorted(counts.items(), key=lambda item: item[0].sort_key()))
        self._hash: Optional[int] = None

    # -- constructors -----------------------------------------------------

    @classmethod
    def one(cls) -> "Monomial":
        return cls()

    @classmethod
    def of_atom(cls, atom: IntervalAtom, power: int = 1) -> "Monomial":
        return cls({atom: power})

    # -- accessors ----------------------------------------------------------

    @property
    def factors(self) -> Tuple[Tuple[IntervalAtom, int], ...]:
        return self._factors

    def atoms(self) -> Tuple[IntervalAtom, ...]:
        return tuple(atom for atom, _ in self._factors)

    def degree(self) -> int:
        return sum(power for _, power in self._factors)

    def is_constant(self) -> bool:
        return not self._factors

    def variables(self) -> Tuple[str, ...]:
        names = []
        for atom, _ in self._factors:
            for var in atom.variables():
                if var not in names:
                    names.append(var)
        return tuple(sorted(names))

    # -- algebra ------------------------------------------------------------

    def multiply(self, other: "Monomial") -> "Monomial":
        counts = {atom: power for atom, power in self._factors}
        for atom, power in other._factors:
            counts[atom] = counts.get(atom, 0) + power
        return Monomial(counts)

    def evaluate(self, state: State) -> Fraction:
        result = Fraction(1)
        for atom, power in self._factors:
            value = atom.evaluate(state)
            if value == 0:
                return Fraction(0)
            result *= value ** power
        return result

    def substitute(self, var: str, replacement: LinExpr) -> Tuple[Fraction, "Monomial"]:
        """Exact substitution ``m[replacement / var]`` as ``coeff * monomial``.

        Substituting a linear expression into each ``max(0, D)`` factor yields
        another ``max(0, D')`` which either stays an atom (possibly rescaled)
        or collapses to a constant, so monomials are closed under
        substitution -- this is what makes the ``Q:Assign`` rule exact in this
        implementation (cf. DESIGN.md section 2).
        """
        coeff = Fraction(1)
        counts: Dict[IntervalAtom, int] = {}
        for atom, power in self._factors:
            if atom.diff.coefficient(var) == 0:
                counts[atom] = counts.get(atom, 0) + power
                continue
            new_diff = atom.diff.substitute(var, replacement)
            scale, new_atom = atom_product(new_diff)
            coeff *= scale ** power
            if coeff == 0:
                return Fraction(0), Monomial.one()
            if new_atom is not None:
                counts[new_atom] = counts.get(new_atom, 0) + power
        return coeff, Monomial(counts)

    # -- comparisons / hashing -----------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Monomial):
            return NotImplemented
        return self._factors == other._factors

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._factors)
        return self._hash

    def sort_key(self) -> Tuple:
        return (self.degree(), tuple((atom.sort_key(), power) for atom, power in self._factors))

    def __repr__(self) -> str:
        return f"Monomial({self})"

    def __str__(self) -> str:
        if not self._factors:
            return "1"
        parts = []
        for atom, power in self._factors:
            if power == 1:
                parts.append(str(atom))
            else:
                parts.append(f"{atom}^{power}")
        return "*".join(parts)


class Polynomial:
    """A finite linear combination of monomials with rational coefficients."""

    __slots__ = ("_terms",)

    def __init__(self, terms: Optional[Mapping[Monomial, Number]] = None) -> None:
        clean: Dict[Monomial, Fraction] = {}
        if terms:
            for monomial, coeff in terms.items():
                frac = to_fraction(coeff)
                if frac != 0:
                    clean[monomial] = clean.get(monomial, Fraction(0)) + frac
        self._terms: Dict[Monomial, Fraction] = {
            monomial: coeff for monomial, coeff in clean.items() if coeff != 0}

    # -- constructors ---------------------------------------------------------

    @classmethod
    def zero(cls) -> "Polynomial":
        return cls()

    @classmethod
    def constant(cls, value: Number) -> "Polynomial":
        return cls({Monomial.one(): value})

    @classmethod
    def of_monomial(cls, monomial: Monomial, coeff: Number = 1) -> "Polynomial":
        return cls({monomial: coeff})

    @classmethod
    def interval(cls, diff: LinExpr, coeff: Number = 1) -> "Polynomial":
        """The polynomial ``coeff * max(0, diff)``."""
        scale, atom = atom_product(diff)
        coeff = to_fraction(coeff)
        if atom is None:
            return cls.constant(coeff * scale)
        return cls({Monomial.of_atom(atom): coeff * scale})

    # -- accessors -------------------------------------------------------------

    @property
    def terms(self) -> Dict[Monomial, Fraction]:
        return dict(self._terms)

    def term_items(self):
        """Items view of the term dict (no copy; do not mutate)."""
        return self._terms.items()

    def coefficient(self, monomial: Monomial) -> Fraction:
        return self._terms.get(monomial, Fraction(0))

    def monomials(self) -> Tuple[Monomial, ...]:
        return tuple(sorted(self._terms, key=lambda m: m.sort_key()))

    def degree(self) -> int:
        if not self._terms:
            return 0
        return max(monomial.degree() for monomial in self._terms)

    def is_zero(self) -> bool:
        return not self._terms

    def is_constant(self) -> bool:
        return all(monomial.is_constant() for monomial in self._terms)

    def constant_value(self) -> Fraction:
        return self._terms.get(Monomial.one(), Fraction(0))

    def variables(self) -> Tuple[str, ...]:
        names = set()
        for monomial in self._terms:
            names.update(monomial.variables())
        return tuple(sorted(names))

    # -- algebra ---------------------------------------------------------------

    def __add__(self, other: Union["Polynomial", Number]) -> "Polynomial":
        other_poly = _as_polynomial(other)
        terms = dict(self._terms)
        for monomial, coeff in other_poly._terms.items():
            terms[monomial] = terms.get(monomial, Fraction(0)) + coeff
        return Polynomial(terms)

    __radd__ = __add__

    def __neg__(self) -> "Polynomial":
        return Polynomial({monomial: -coeff for monomial, coeff in self._terms.items()})

    def __sub__(self, other: Union["Polynomial", Number]) -> "Polynomial":
        return self + (-_as_polynomial(other))

    def __rsub__(self, other: Union["Polynomial", Number]) -> "Polynomial":
        return _as_polynomial(other) + (-self)

    def __mul__(self, other: Union["Polynomial", Number]) -> "Polynomial":
        if isinstance(other, Polynomial):
            terms: Dict[Monomial, Fraction] = {}
            for mono_a, coeff_a in self._terms.items():
                for mono_b, coeff_b in other._terms.items():
                    product = mono_a.multiply(mono_b)
                    terms[product] = terms.get(product, Fraction(0)) + coeff_a * coeff_b
            return Polynomial(terms)
        factor = to_fraction(other)
        return Polynomial({monomial: coeff * factor for monomial, coeff in self._terms.items()})

    __rmul__ = __mul__

    def scale(self, factor: Number) -> "Polynomial":
        return self * factor

    def substitute(self, var: str, replacement: LinExpr) -> "Polynomial":
        terms: Dict[Monomial, Fraction] = {}
        for monomial, coeff in self._terms.items():
            scale, new_monomial = monomial.substitute(var, replacement)
            value = coeff * scale
            if value != 0:
                terms[new_monomial] = terms.get(new_monomial, Fraction(0)) + value
        return Polynomial(terms)

    def evaluate(self, state: State) -> Fraction:
        total = Fraction(0)
        for monomial, coeff in self._terms.items():
            total += coeff * monomial.evaluate(state)
        return total

    # -- comparisons / rendering ------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (int, Fraction)):
            other = Polynomial.constant(other)
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self._terms == other._terms

    def __hash__(self) -> int:
        return hash(tuple(sorted(((m.sort_key(), c) for m, c in self._terms.items()))))

    def __repr__(self) -> str:
        return f"Polynomial({self})"

    def __str__(self) -> str:
        if not self._terms:
            return "0"
        parts = []
        ordered = sorted(self._terms.items(), key=lambda item: item[0].sort_key(), reverse=True)
        for monomial, coeff in ordered:
            rendered_coeff = pretty_fraction(abs(coeff))
            sign = "-" if coeff < 0 else "+"
            if monomial.is_constant():
                body = rendered_coeff
            elif abs(coeff) == 1:
                body = str(monomial)
            else:
                body = f"{rendered_coeff}*{monomial}"
            if not parts:
                prefix = "-" if coeff < 0 else ""
                parts.append(f"{prefix}{body}")
            else:
                parts.append(f"{sign} {body}")
        return " ".join(parts)


def _as_polynomial(value: Union[Polynomial, Number]) -> Polynomial:
    if isinstance(value, Polynomial):
        return value
    return Polynomial.constant(value)
