"""Helpers for exact rational arithmetic and sound float/rational conversion.

The derivation system works with :class:`fractions.Fraction` coefficients so
that probability-weighted sums (e.g. ``1/3`` and ``2/3`` in ``Q:PIf``) stay
exact.  Only the final linear program is handed to a floating-point solver;
the helpers here convert back and forth while keeping the analysis sound
(rounding *down* where an under-approximation is required, rationalising for
display where a pretty constant is wanted).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Union

Number = Union[int, float, Fraction, str]

#: Tolerance used when snapping floating-point LP results to nearby rationals.
SNAP_TOLERANCE = 1e-5

#: Maximal denominator considered when rationalising floating-point values.
MAX_DENOMINATOR = 10_000


def to_fraction(value: Number) -> Fraction:
    """Convert ``value`` to an exact :class:`Fraction`.

    Integers, strings like ``"3/4"``, existing fractions and floats are all
    accepted.  Floats are converted exactly (no snapping); use
    :func:`snap_fraction` if a "nice" nearby rational is wanted.
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, bool):
        raise TypeError("booleans are not valid numeric coefficients")
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, str):
        return Fraction(value)
    if isinstance(value, float):
        return Fraction(value)
    raise TypeError(f"cannot interpret {value!r} as a rational number")


def snap_fraction(value: float, tolerance: float = SNAP_TOLERANCE,
                  max_denominator: int = MAX_DENOMINATOR) -> Fraction:
    """Rationalise a floating-point value to a nearby small-denominator fraction.

    The LP solver returns values such as ``0.6666666669``; for reporting we
    want ``2/3``.  If no small-denominator fraction lies within ``tolerance``
    the exact float conversion is returned instead, so the result is always a
    faithful representation up to ``tolerance``.
    """
    if value != value:  # NaN
        raise ValueError("cannot snap NaN to a rational")
    candidate = Fraction(value).limit_denominator(max_denominator)
    if abs(float(candidate) - value) <= tolerance * max(1.0, abs(value)):
        return candidate
    return Fraction(value)


def sound_floor_fraction(value: float, tolerance: float = SNAP_TOLERANCE) -> Fraction:
    """Return a rational lower bound for ``value``.

    Used when a floating-point optimisation result must be turned into a
    sound constant (e.g. the largest ``c`` such that ``ctx |= e >= c``): we
    prefer a nearby nice rational when one exists *and does not exceed* the
    value (modulo ``tolerance``), otherwise we subtract the tolerance.
    """
    snapped = snap_fraction(value, tolerance)
    if float(snapped) <= value + tolerance:
        return snapped
    return Fraction(value - tolerance)


def pretty_fraction(value: Fraction, digits: int = 6) -> str:
    """Render a fraction the way the paper's tables do.

    Integral values print without a decimal point, small-denominator values
    print as decimals when exact in ``digits`` digits (``0.2``), otherwise a
    rounded decimal (``0.666667``) is used -- matching Table 1's style.
    """
    frac = Fraction(value)
    if frac.denominator == 1:
        return str(frac.numerator)
    as_float = float(frac)
    rounded = round(as_float, digits)
    if Fraction(str(rounded)) == frac:
        text = f"{rounded:.{digits}f}".rstrip("0").rstrip(".")
        return text
    return f"{as_float:.{digits}f}"


def is_close_fraction(a: Fraction, b: Fraction, tolerance: Fraction = Fraction(1, 10 ** 6)) -> bool:
    """Exact-arithmetic analogue of :func:`math.isclose` for fractions."""
    return abs(Fraction(a) - Fraction(b)) <= tolerance
