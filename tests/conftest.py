"""Shared fixtures: small example programs used across the test suite."""

from __future__ import annotations

import pytest

from repro.lang import builder as B
from repro.lang.distributions import Uniform


@pytest.fixture
def simple_random_walk():
    """The Sec. 3.1 random walk: expected cost 2*x."""
    return B.program(B.proc("main", ["x"],
        B.while_("x > 0",
            B.prob("3/4", B.assign("x", "x - 1"), B.assign("x", "x + 1")),
            B.tick(1))))


@pytest.fixture
def rdwalk_program():
    """Fig. 4 rdwalk: expected cost 2*(n - x)."""
    return B.program(B.proc("main", ["x", "n"],
        B.while_("x < n",
            B.prob("3/4", B.assign("x", "x + 1"), B.assign("x", "x - 1")),
            B.tick(1))))


@pytest.fixture
def race_program():
    """Fig. 2 race: expected cost (2/3)*(t + 9 - h)."""
    return B.program(B.proc("main", ["h", "t"],
        B.while_("h <= t",
            B.assign("t", "t + 1"),
            B.prob("1/2", B.incr_sample("h", Uniform(0, 10)), B.skip()),
            B.tick(1))))


@pytest.fixture
def deterministic_countdown():
    """A deterministic loop: exactly x ticks."""
    return B.program(B.proc("main", ["x"],
        B.while_("x > 0",
            B.assign("x", "x - 1"),
            B.tick(1))))


@pytest.fixture
def geometric_program():
    """A geometric loop: expected cost 2 regardless of input."""
    return B.program(B.proc("main", [],
        B.assign("go", "1"),
        B.while_("go > 0",
            B.prob("1/2", B.assign("go", "0"), B.skip()),
            B.tick(1))))
