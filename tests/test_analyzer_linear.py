"""Integration tests: the analyzer on linear-bound programs.

These check both the *existence* of bounds and, where the paper (or a short
manual derivation) gives the exact constant, the constants themselves.
Soundness is additionally checked against the exact ``ert``/MDP semantics on
small inputs.
"""

from fractions import Fraction

import pytest

from repro import analyze_program
from repro.lang import builder as B
from repro.lang.distributions import Bernoulli, Uniform
from repro.semantics.ert import expected_cost_ert
from repro.semantics.mdp import expected_cost_mdp


def bound_of(program, **options):
    result = analyze_program(program, **options)
    assert result.success, result.message
    return result.bound


class TestSimpleWalks:
    def test_simple_random_walk_exact_constant(self, simple_random_walk):
        bound = bound_of(simple_random_walk)
        assert bound.evaluate({"x": 100}) == 200
        assert bound.evaluate({"x": 0}) == 0
        assert bound.evaluate({"x": -5}) == 0

    def test_rdwalk_bound(self, rdwalk_program):
        bound = bound_of(rdwalk_program)
        # The paper reports 2|[x, n+1]|; the exact expectation is 2(n-x).
        value = float(bound.evaluate({"x": 0, "n": 100}))
        assert 200 <= value <= 202

    def test_race_matches_paper_constant(self, race_program):
        bound = bound_of(race_program)
        assert bound.evaluate({"h": 0, "t": 30}) == Fraction(2, 3) * 39

    def test_deterministic_countdown_is_tight(self, deterministic_countdown):
        bound = bound_of(deterministic_countdown)
        assert bound.evaluate({"x": 50}) == 50

    def test_geometric_loop_constant_bound(self, geometric_program):
        bound = bound_of(geometric_program)
        value = float(bound.evaluate({}))
        assert value == pytest.approx(2.0, abs=1e-6)

    def test_bernoulli_walk(self):
        program = B.program(B.proc("main", ["x", "n"],
            B.while_("x < n",
                B.incr_sample("x", Bernoulli(Fraction(1, 2))),
                B.tick(1))))
        bound = bound_of(program)
        assert bound.evaluate({"x": 0, "n": 50}) == 100


class TestStructuredPrograms:
    def test_sequential_loops(self):
        program = B.program(B.proc("main", ["x", "y"],
            B.while_("x > 0", B.assign("x", "x - 1"), B.tick(1)),
            B.while_("y > 0", B.assign("y", "y - 1"), B.tick(1))))
        bound = bound_of(program)
        assert bound.evaluate({"x": 10, "y": 20}) == 30

    def test_loop_with_if(self):
        program = B.program(B.proc("main", ["x", "n"],
            B.while_("x < n",
                B.if_("x < 0", B.assign("x", "0"), B.assign("x", "x + 1")),
                B.tick(1))))
        bound = bound_of(program)
        assert float(bound.evaluate({"x": 0, "n": 25})) >= 25

    def test_nondeterministic_choice_takes_worst_branch(self):
        program = B.program(B.proc("main", ["x"],
            B.while_("x > 0",
                B.nondet(B.assign("x", "x - 1"), B.assign("x", "x - 2")),
                B.tick(1))))
        bound = bound_of(program)
        # Demonic scheduler may always pick the slow branch: bound >= x.
        assert float(bound.evaluate({"x": 40})) >= 40

    def test_symbolic_tick(self):
        program = B.program(B.proc("main", ["n"],
            B.assume("n >= 0"),
            B.while_("n > 0",
                B.tick(B.expr("n")),
                B.assign("n", "n - 1"))))
        bound = bound_of(program, max_degree=2, auto_degree=False)
        # Sum 1..n = n(n+1)/2.
        assert float(bound.evaluate({"n": 10})) >= 55

    def test_unreachable_else_branch_costs_nothing(self):
        program = B.program(B.proc("main", ["x"],
            B.assume("x >= 0"),
            B.if_("x >= 0", B.tick(1), B.tick(1000))))
        bound = bound_of(program)
        assert float(bound.evaluate({"x": 5})) <= 1.0 + 1e-6

    def test_procedure_call_inlining(self):
        program = B.program(
            B.proc("main", ["x", "n"],
                B.while_("x < n", B.call("step"), B.tick(1))),
            B.proc("step", [], B.prob("1/2", B.assign("x", "x + 1"), B.skip())))
        bound = bound_of(program)
        assert bound.evaluate({"x": 0, "n": 10}) == 20


class TestSoundnessAgainstExactSemantics:
    @pytest.mark.parametrize("x", [1, 2])
    def test_simple_walk_bound_dominates_mdp(self, simple_random_walk, x):
        bound = bound_of(simple_random_walk)
        exact = expected_cost_mdp(simple_random_walk, {"x": x},
                                  max_configs=2000, iterations=1500)
        assert float(bound.evaluate({"x": x})) + 1e-6 >= exact

    @pytest.mark.parametrize("state", [{"x": 0, "n": 3}, {"x": 1, "n": 4}])
    def test_rdwalk_bound_dominates_ert(self, rdwalk_program, state):
        bound = bound_of(rdwalk_program)
        lower = expected_cost_ert(rdwalk_program, state, fuel=40)
        assert bound.evaluate(state) >= lower

    def test_race_bound_dominates_ert(self, race_program):
        bound = bound_of(race_program)
        state = {"h": 0, "t": 2}
        lower = expected_cost_ert(race_program, state, fuel=24)
        assert bound.evaluate(state) >= lower


class TestAnalysisMetadata:
    def test_result_fields(self, simple_random_walk):
        result = analyze_program(simple_random_walk)
        assert result.success
        assert result.degree == 1
        assert result.time_seconds > 0
        assert result.lp_variables > 0
        assert result.lp_constraints > 0
        assert result.certificate is not None
        assert "|[0, x]|" in result.bound.pretty()

    def test_require_bound_on_failure(self):
        # A loop that never terminates and ticks forever has no finite bound.
        program = B.program(B.proc("main", ["x"],
            B.assume("x >= 1"),
            B.while_("x > 0", B.tick(1))))
        result = analyze_program(program, auto_degree=False)
        assert not result.success
        with pytest.raises(Exception):
            result.require_bound()

    def test_unbiased_walk_has_no_linear_bound(self):
        # The symmetric random walk terminates a.s. but has infinite expected time.
        program = B.program(B.proc("main", ["x"],
            B.while_("x > 0",
                B.prob("1/2", B.assign("x", "x - 1"), B.assign("x", "x + 1")),
                B.tick(1))))
        result = analyze_program(program, auto_degree=False)
        assert not result.success

    def test_rdwalk_condition_star_violated(self):
        # Fig. 4 requires p*K1 > (1-p)*K2; with the inequality reversed no
        # bound exists and the analyzer must report failure, like Absynth.
        program = B.program(B.proc("main", ["x", "n"],
            B.while_("x < n",
                B.prob("1/4", B.assign("x", "x + 1"), B.assign("x", "x - 1")),
                B.tick(1))))
        result = analyze_program(program, auto_degree=False)
        assert not result.success
