"""Integration tests: the analyzer on polynomial-bound programs and procedures."""

from fractions import Fraction

import pytest

from repro import analyze_program
from repro.lang import builder as B
from repro.lang.distributions import Uniform
from repro.semantics.ert import expected_cost_ert
from repro.utils.linear import LinExpr


def bound_of(program, **options):
    result = analyze_program(program, **options)
    assert result.success, result.message
    return result.bound


class TestNestedLoops:
    def test_deterministic_nested_loop(self):
        program = B.program(B.proc("main", ["n"],
            B.while_("n > 0",
                B.assign("n", "n - 1"),
                B.assign("m", "n"),
                B.while_("m > 0", B.assign("m", "m - 1"), B.tick(1)))))
        bound = bound_of(program, max_degree=2, auto_degree=False)
        assert bound.degree() == 2
        # Exact cost is n(n-1)/2; the bound must dominate it.
        assert float(bound.evaluate({"n": 20})) >= 190

    def test_probabilistic_nested_loop(self):
        program = B.program(B.proc("main", ["x"],
            B.while_("x > 0",
                B.prob("1/2", B.assign("x", "x - 1"), B.skip()),
                B.assign("y", "x"),
                B.while_("y > 0", B.assign("y", "y - 1"), B.tick(1)))))
        bound = bound_of(program, max_degree=2, auto_degree=False)
        assert bound.degree() == 2
        # Expected cost is roughly 2 * x^2 / 2 = x^2; check domination on a
        # small input against the fuel-bounded exact transformer.
        state = {"x": 4}
        assert bound.evaluate(state) >= expected_cost_ert(program, state, fuel=36)

    def test_auto_degree_retries(self):
        program = B.program(B.proc("main", ["n"],
            B.while_("n > 0",
                B.assign("n", "n - 1"),
                B.assign("m", "n"),
                B.while_("m > 0", B.assign("m", "m - 1"), B.tick(1)))))
        result = analyze_program(program, max_degree=1, auto_degree=True, degree_limit=2)
        assert result.success
        assert result.degree == 2

    def test_interacting_sequential_loops(self):
        """The first loop's growth of y must be paid for the second loop."""
        program = B.program(B.proc("main", ["x", "y"],
            B.while_("x > 0",
                B.assign("x", "x - 1"),
                B.prob("1/2", B.assign("y", "y + 1"), B.skip()),
                B.tick(1)),
            B.while_("y > 0",
                B.assign("y", "y - 1"),
                B.tick(1))))
        bound = bound_of(program)
        # Expected cost = x + (y + x/2) = 1.5x + y.
        value = float(bound.evaluate({"x": 100, "y": 10}))
        assert 160 <= value <= 175


class TestSymbolicCosts:
    def test_trader_shape(self):
        program = B.program(
            B.proc("main", ["smin", "s"],
                B.assume("smin >= 0"),
                B.while_("s > smin",
                    B.prob("1/4", B.assign("s", "s + 1"), B.assign("s", "s - 1")),
                    B.call("trade"))),
            B.proc("trade", [],
                B.sample("nShares", Uniform(0, 10)),
                B.while_("nShares > 0",
                    B.assign("nShares", "nShares - 1"),
                    B.tick(B.expr("s")))))
        bound = bound_of(program, max_degree=2, auto_degree=False)
        assert bound.degree() == 2
        # Leading behaviour ~5 s^2 for smin = 0 (paper Fig. 1 discussion).
        value = float(bound.evaluate({"s": 100, "smin": 0}))
        assert 45_000 <= value <= 70_000

    def test_resource_counter_variable(self):
        """`cost = cost + e` with resource_counter='cost' behaves like tick(e)."""
        program = B.program(B.proc("main", ["n"],
            B.assume("n >= 0"),
            B.while_("n > 0",
                B.assign("cost", "cost + n"),
                B.assign("n", "n - 1"))))
        bound = bound_of(program, max_degree=2, auto_degree=False,
                         resource_counter="cost")
        assert float(bound.evaluate({"n": 10})) >= 55


class TestRecursion:
    def test_linear_recursion(self):
        program = B.program(
            B.proc("main", ["n"], B.call("down")),
            B.proc("down", [],
                B.if_("n > 0",
                      B.seq(B.tick(1), B.assign("n", "n - 1"), B.call("down")),
                      B.skip())))
        bound = bound_of(program)
        assert bound.evaluate({"n": 30}) == 30

    def test_probabilistic_recursion(self):
        program = B.program(
            B.proc("main", ["n"], B.call("geo")),
            B.proc("geo", [],
                B.if_("n > 0",
                      B.seq(B.tick(1),
                            B.prob("1/2", B.assign("n", "n - 1"), B.skip()),
                            B.call("geo")),
                      B.skip())))
        bound = bound_of(program)
        assert float(bound.evaluate({"n": 10})) == pytest.approx(20.0, abs=1e-4)

    def test_recursive_quadratic(self):
        program = B.program(
            B.proc("main", ["l", "h"], B.call("narrow")),
            B.proc("narrow", [],
                B.if_("h > l",
                      B.seq(
                          B.assign("d", "h - l"),
                          B.while_("d > 0", B.assign("d", "d - 1"), B.tick(1)),
                          B.prob("1/2", B.assign("l", "l + 1"), B.assign("h", "h - 1")),
                          B.call("narrow")),
                      B.skip())))
        bound = bound_of(program, max_degree=2, auto_degree=False)
        assert bound.degree() == 2
        # Exact cost is sum_{w=1..h-l} w = w(w+1)/2.
        assert float(bound.evaluate({"l": 0, "h": 10})) >= 55


class TestHints:
    def test_hint_atoms_are_honoured(self):
        program = B.program(B.proc("main", ["x", "n"],
            B.while_("x < n",
                B.prob("1/2", B.assign("x", "x + 1"), B.skip()),
                B.tick(1))))
        hint = LinExpr({"n": 1, "x": -1}, 17)
        result = analyze_program(program, hint_atoms=(hint,))
        assert result.success
        # The hint enlarges the template but must not change tightness much.
        assert float(result.bound.evaluate({"x": 0, "n": 10})) <= 2 * 10 + 2 * 17
