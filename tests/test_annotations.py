"""Tests for potential annotations with symbolic coefficients."""

from fractions import Fraction

import pytest

from repro.core.annotations import PotentialAnnotation
from repro.core.constraints import AffExpr, ConstraintSystem
from repro.utils.linear import LinExpr
from repro.utils.polynomials import IntervalAtom, Monomial, Polynomial

X = LinExpr({"x": 1})
N_MINUS_X = LinExpr({"n": 1, "x": -1})
MONO_X = Monomial.of_atom(IntervalAtom(X))
MONO_NX = Monomial.of_atom(IntervalAtom(N_MINUS_X))


class TestConstruction:
    def test_zero(self):
        assert PotentialAnnotation.zero().is_zero()

    def test_of_polynomial(self):
        poly = Polynomial.interval(X, 2) + Polynomial.constant(3)
        annotation = PotentialAnnotation.of_polynomial(poly)
        assert annotation.coefficient(MONO_X).const == 2
        assert annotation.constant_coefficient().const == 3

    def test_template_creates_nonneg_vars(self):
        cs = ConstraintSystem()
        annotation = PotentialAnnotation.template(cs, [MONO_X, MONO_NX], "inv")
        # One variable per monomial plus the constant one.
        assert cs.num_variables == 3
        assert all(var.nonneg for var in cs.variables)
        assert Monomial.one() in annotation.terms

    def test_degree(self):
        quad = Monomial({IntervalAtom(X): 2})
        annotation = PotentialAnnotation({quad: 1})
        assert annotation.degree() == 2


class TestVectorSpace:
    def test_plus(self):
        a = PotentialAnnotation({MONO_X: 1})
        b = PotentialAnnotation({MONO_X: 2, MONO_NX: 1})
        combined = a.plus(b)
        assert combined.coefficient(MONO_X).const == 3
        assert combined.coefficient(MONO_NX).const == 1

    def test_scale(self):
        scaled = PotentialAnnotation({MONO_X: 2}).scale(Fraction(1, 2))
        assert scaled.coefficient(MONO_X).const == 1

    def test_scale_by_zero(self):
        assert PotentialAnnotation({MONO_X: 2}).scale(0).is_zero()

    def test_add_constant(self):
        annotation = PotentialAnnotation({MONO_X: 1}).add_constant(5)
        assert annotation.constant_coefficient().const == 5

    def test_add_polynomial_with_symbolic_scale(self):
        cs = ConstraintSystem()
        scale = cs.new_var("s")
        annotation = PotentialAnnotation.zero().add_polynomial(
            Polynomial.interval(X, 2), scale)
        coeff = annotation.coefficient(MONO_X)
        assert coeff.terms[cs.variables[0]] == 2

    def test_weighted_sum_probabilities(self):
        a = PotentialAnnotation({MONO_X: 4})
        b = PotentialAnnotation({MONO_X: 8})
        combined = PotentialAnnotation.weighted_sum([
            (Fraction(3, 4), a), (Fraction(1, 4), b)])
        assert combined.coefficient(MONO_X).const == 5


class TestSubstitution:
    def test_substitute_shifts_atom(self):
        annotation = PotentialAnnotation({MONO_X: 2})
        shifted = annotation.substitute("x", LinExpr({"x": 1}, -1))
        target = Monomial.of_atom(IntervalAtom(LinExpr({"x": 1}, -1)))
        assert shifted.coefficient(target).const == 2
        assert shifted.coefficient(MONO_X).is_zero()

    def test_substitute_constant_folds_into_constant(self):
        annotation = PotentialAnnotation({MONO_X: 3})
        result = annotation.substitute("x", LinExpr({}, 4))
        assert result.constant_coefficient().const == 12

    def test_substitute_merges_colliding_monomials(self):
        annotation = PotentialAnnotation({MONO_X: 1, MONO_NX: 1})
        # n := x makes max(0, n - x) collapse to 0 and keeps max(0, x).
        result = annotation.substitute("n", X)
        assert result.coefficient(MONO_X).const == 1
        assert len(result.terms) == 1

    def test_drop_monomials_with_variable(self):
        cs = ConstraintSystem()
        template = PotentialAnnotation.template(cs, [MONO_X, MONO_NX], "q")
        before = cs.num_constraints
        restricted = template.drop_monomials_with_variable("n", cs)
        assert MONO_NX not in restricted.terms
        assert MONO_X in restricted.terms
        assert cs.num_constraints == before + 1


class TestInstantiation:
    def test_instantiate_with_solution(self):
        cs = ConstraintSystem()
        template = PotentialAnnotation.template(cs, [MONO_X], "q")
        assignment = {var: Fraction(i + 1) for i, var in enumerate(cs.variables)}
        poly = template.instantiate(assignment)
        assert poly.evaluate({"x": 10}) > 0

    def test_instantiate_drops_zeroes(self):
        cs = ConstraintSystem()
        template = PotentialAnnotation.template(cs, [MONO_X], "q")
        assignment = {var: Fraction(0) for var in cs.variables}
        assert template.instantiate(assignment).is_zero()
