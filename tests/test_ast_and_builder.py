"""Unit tests for the AST classes and the builder DSL."""

from fractions import Fraction

import pytest

from repro.lang import ast
from repro.lang import builder as B
from repro.lang.distributions import Uniform
from repro.lang.errors import LoweringError


class TestExpressions:
    def test_var_equality(self):
        assert ast.Var("x") == ast.Var("x")
        assert ast.Var("x") != ast.Var("y")

    def test_const_fraction(self):
        assert ast.Const("3/4").value == Fraction(3, 4)

    def test_binop_variables(self):
        expr = ast.BinOp("+", ast.Var("x"), ast.BinOp("*", ast.Const(2), ast.Var("y")))
        assert expr.variables() == {"x", "y"}

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            ast.BinOp("**", ast.Var("x"), ast.Const(2))

    def test_expr_to_linexpr_linear(self):
        expr = ast.BinOp("-", ast.BinOp("*", ast.Const(3), ast.Var("x")), ast.Const(1))
        lowered = ast.expr_to_linexpr(expr)
        assert lowered.coefficient("x") == 3
        assert lowered.const_term == -1

    def test_expr_to_linexpr_rejects_products(self):
        expr = ast.BinOp("*", ast.Var("x"), ast.Var("y"))
        with pytest.raises(LoweringError):
            ast.expr_to_linexpr(expr)
        assert not ast.is_linear_expr(expr)

    def test_expr_to_linexpr_rejects_div(self):
        with pytest.raises(LoweringError):
            ast.expr_to_linexpr(ast.BinOp("div", ast.Var("x"), ast.Const(2)))


class TestCommands:
    def test_node_ids_unique(self):
        program = B.program(B.proc("main", ["x"],
            B.while_("x > 0", B.assign("x", "x - 1"), B.tick(1))))
        ids = [node.node_id for node in program.iter_nodes()]
        assert len(ids) == len(set(ids))

    def test_seq_flattening(self):
        command = ast.Seq([ast.Seq([ast.Skip(), ast.Skip()]), ast.Skip()])
        assert len(command.commands) == 3

    def test_assigned_variables(self):
        command = B.seq(B.assign("x", "1"), B.sample("y", Uniform(0, 1)))
        assert command.assigned_variables() == {"x", "y"}

    def test_used_variables_includes_guards(self):
        command = B.while_("x < n", B.tick(1))
        assert command.used_variables() == {"x", "n"}

    def test_called_procedures(self):
        command = B.seq(B.call("p"), B.if_("x > 0", B.call("q")))
        assert command.called_procedures() == {"p", "q"}

    def test_prob_choice_probability_range(self):
        with pytest.raises(ValueError):
            ast.ProbChoice(Fraction(3, 2), ast.Skip(), ast.Skip())

    def test_tick_constant_flag(self):
        assert B.tick(2).is_constant
        assert not B.tick(B.expr("x")).is_constant

    def test_sample_outcomes(self):
        command = B.incr_sample("x", Uniform(0, 2))
        outcomes = command.outcome_exprs()
        assert len(outcomes) == 3
        assert sum(prob for prob, _ in outcomes) == 1


class TestPrograms:
    def test_missing_main_rejected(self):
        with pytest.raises(ValueError):
            ast.Program([ast.Procedure("helper", ast.Skip())], main="main")

    def test_program_variables(self):
        program = B.program(B.proc("main", ["x", "n"],
            B.while_("x < n", B.assign("x", "x + 1"))))
        assert program.variables() >= {"x", "n"}

    def test_call_graph_and_recursion(self):
        program = B.program(
            B.proc("main", [], B.call("even")),
            B.proc("even", [], B.if_("x > 0", B.seq(B.assign("x", "x - 1"), B.call("odd")))),
            B.proc("odd", [], B.if_("x > 0", B.seq(B.assign("x", "x - 1"), B.call("even")))))
        recursive = program.recursive_procedures()
        assert recursive == {"even", "odd"}
        assert program.call_graph()["main"] == {"even"}

    def test_non_recursive_program(self):
        program = B.program(B.proc("main", [], B.call("leaf")),
                            B.proc("leaf", [], B.tick(1)))
        assert program.recursive_procedures() == set()


class TestBuilder:
    def test_string_expressions_are_parsed(self):
        command = B.assign("x", "2 * x + 1")
        lowered = ast.expr_to_linexpr(command.expr)
        assert lowered.coefficient("x") == 2
        assert lowered.const_term == 1

    def test_prob_accepts_fraction_strings(self):
        command = B.prob("1/3", B.skip())
        assert command.probability == Fraction(1, 3)
        assert isinstance(command.right, ast.Skip)

    def test_while_with_multiple_body_commands(self):
        loop = B.while_("x > 0", B.assign("x", "x - 1"), B.tick(1))
        assert isinstance(loop.body, ast.Seq)
        assert len(loop.body.commands) == 2

    def test_if_default_else(self):
        branch = B.if_("x > 0", B.tick(1))
        assert isinstance(branch.else_branch, ast.Skip)

    def test_nondet(self):
        choice = B.nondet(B.tick(1), B.tick(2))
        assert isinstance(choice, ast.NonDetChoice)

    def test_procedure_builder_chain(self):
        proc = (B.ProcedureBuilder("main", ["x"])
                .assume("x >= 0")
                .while_("x > 0", B.assign("x", "x - 1"), B.tick(1))
                .build())
        assert proc.name == "main"
        assert proc.params == ("x",)

    def test_program_builder(self):
        builder = B.ProgramBuilder()
        builder.add(B.ProcedureBuilder("main").tick(1))
        program = builder.build()
        assert program.main == "main"

    def test_program_builder_requires_procedures(self):
        with pytest.raises(ValueError):
            B.ProgramBuilder().build()

    def test_sample_helpers(self):
        incr = B.incr_sample("x", Uniform(0, 1))
        decr = B.decr_sample("x", Uniform(0, 1))
        assert incr.op == "+" and decr.op == "-"
        assert isinstance(incr.expr, ast.Var) and incr.expr.name == "x"
