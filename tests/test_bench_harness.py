"""Tests for the Table-1 and figure harnesses (quick configurations)."""

import pytest

from repro.bench.figures import (
    appendix_f_series,
    figure8_histogram,
    figure8_pol04_series,
    figure8_trader_surface,
    sweep_series,
)
from repro.bench.registry import get_benchmark
from repro.bench.reporting import format_percentage, render_table, rows_to_csv
from repro.bench.table1 import (
    TABLE_HEADERS,
    Table1Row,
    evaluate_benchmark,
    render_rows,
    run_table1,
)


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table(("a", "name"), [(1, "x"), (22, "longer")], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert len(lines) == 5

    def test_rows_to_csv(self):
        csv_text = rows_to_csv(("a", "b"), [(1, 2)])
        assert csv_text.splitlines()[0] == "a,b"
        assert csv_text.splitlines()[1] == "1,2"

    def test_format_percentage(self):
        assert format_percentage(float("nan")) == "n/a"
        assert format_percentage(float("inf")) == "inf"
        assert format_percentage(1.23456) == "1.235"


class TestTable1Harness:
    def test_evaluate_single_benchmark_without_simulation(self):
        row = evaluate_benchmark(get_benchmark("ber"), simulate=False)
        assert row.success
        assert row.bound is not None
        assert row.error_percent != row.error_percent      # NaN without simulation
        assert row.analysis_seconds > 0

    def test_evaluate_with_small_simulation(self):
        row = evaluate_benchmark(get_benchmark("linear01"), runs=40)
        assert row.success
        assert row.measurements
        # The bound dominates the (sampled) expectation on every swept input.
        for _state, measured, bound_value in row.measurements:
            assert bound_value + 1e-6 >= measured - 10.0
        assert row.error_percent == row.error_percent      # a real number

    def test_run_table1_by_names(self):
        rows = run_table1(names=["ber", "rdwalk"], simulate=False)
        assert [row.name for row in rows] == ["ber", "rdwalk"]

    def test_render_rows_grouping(self):
        rows = [
            Table1Row("lin", "linear", "x", "x", 1.0, "1", 0.1, 0.1, True, "paper"),
            Table1Row("pol", "polynomial", "x^2", "x^2", 1.0, "1", 0.1, 0.1, True, "paper"),
        ]
        text = render_rows(rows)
        assert "Linear programs" in text
        assert "Polynomial programs" in text
        assert len(TABLE_HEADERS) == 7

    def test_failed_row_rendering(self):
        row = Table1Row("bad", "linear", None, "?", float("nan"), None, 0.0, None,
                        False, "reconstructed", message="infeasible")
        assert "none" in str(row.as_table_row()[1])


class TestFigureHarness:
    def test_sweep_series_quick(self):
        series = sweep_series(get_benchmark("ber"), runs=30, values=(20, 40))
        assert series.bound is not None
        assert len(series.points) == 2
        assert series.bound_dominates(slack=0.10)
        csv_text = series.to_csv()
        assert "measured_mean" in csv_text.splitlines()[0]

    def test_appendix_series_subset(self):
        series_list = appendix_f_series(names=["linear01", "ber"], runs=20)
        assert {series.benchmark for series in series_list} == {"linear01", "ber"}

    def test_figure8_histogram_quick(self):
        figure = figure8_histogram(runs=300, n=30)
        assert figure.counts.sum() == 300
        assert figure.bound_value >= figure.measured_mean - 5

    def test_figure8_trader_surface_quick(self):
        points = figure8_trader_surface(s_values=(120,), smin_values=(100,), runs=30)
        assert len(points) == 1
        assert points[0].bound_value > 0

    def test_figure8_pol04_quick(self):
        series = figure8_pol04_series(runs=30, values=(10, 20))
        assert len(series.points) == 2
        assert series.bound is not None and series.bound.degree() == 2


class TestPerfSmoke:
    def test_perfsmoke_limit_two(self, tmp_path):
        import json

        from repro.bench.perfsmoke import main, run_suite

        output = tmp_path / "bench.json"
        assert main(["--limit", "2", "--quiet",
                     "--output", str(output)]) == 0
        report = json.loads(output.read_text())
        assert report["suite"] == "table1-linear"
        assert len(report["programs"]) == 2
        for program in report["programs"]:
            assert program["success"]
            assert program["wall_seconds"] >= 0
            assert program["fm_queries"] >= 0
        assert "hit_rate" in report["entailment_cache"]

    def test_run_suite_counts_queries(self):
        from repro.bench.perfsmoke import run_suite

        report = run_suite("linear", limit=1)
        assert report["programs"][0]["fm_queries"] >= 0
        assert report["total_wall_seconds"] >= 0
