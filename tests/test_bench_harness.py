"""Tests for the Table-1 and figure harnesses (quick configurations)."""

import pytest

from repro.bench.figures import (
    appendix_f_series,
    figure8_histogram,
    figure8_pol04_series,
    figure8_trader_surface,
    sweep_series,
)
from repro.bench.registry import get_benchmark
from repro.bench.reporting import format_percentage, render_table, rows_to_csv
from repro.bench.table1 import (
    TABLE_HEADERS,
    Table1Row,
    evaluate_benchmark,
    render_rows,
    run_table1,
)


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table(("a", "name"), [(1, "x"), (22, "longer")], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert len(lines) == 5

    def test_rows_to_csv(self):
        csv_text = rows_to_csv(("a", "b"), [(1, 2)])
        assert csv_text.splitlines()[0] == "a,b"
        assert csv_text.splitlines()[1] == "1,2"

    def test_format_percentage(self):
        assert format_percentage(float("nan")) == "n/a"
        assert format_percentage(float("inf")) == "inf"
        assert format_percentage(1.23456) == "1.235"


class TestTable1Harness:
    def test_evaluate_single_benchmark_without_simulation(self):
        row = evaluate_benchmark(get_benchmark("ber"), simulate=False)
        assert row.success
        assert row.bound is not None
        assert row.error_percent != row.error_percent      # NaN without simulation
        assert row.analysis_seconds > 0

    def test_evaluate_with_small_simulation(self):
        row = evaluate_benchmark(get_benchmark("linear01"), runs=40)
        assert row.success
        assert row.measurements
        # The bound dominates the (sampled) expectation on every swept input.
        for _state, measured, bound_value in row.measurements:
            assert bound_value + 1e-6 >= measured - 10.0
        assert row.error_percent == row.error_percent      # a real number

    def test_run_table1_by_names(self):
        rows = run_table1(names=["ber", "rdwalk"], simulate=False)
        assert [row.name for row in rows] == ["ber", "rdwalk"]

    def test_render_rows_grouping(self):
        rows = [
            Table1Row("lin", "linear", "x", "x", 1.0, "1", 0.1, 0.1, True, "paper"),
            Table1Row("pol", "polynomial", "x^2", "x^2", 1.0, "1", 0.1, 0.1, True, "paper"),
        ]
        text = render_rows(rows)
        assert "Linear programs" in text
        assert "Polynomial programs" in text
        assert len(TABLE_HEADERS) == 7

    def test_failed_row_rendering(self):
        row = Table1Row("bad", "linear", None, "?", float("nan"), None, 0.0, None,
                        False, "reconstructed", message="infeasible")
        assert "none" in str(row.as_table_row()[1])


class TestFigureHarness:
    def test_sweep_series_quick(self):
        series = sweep_series(get_benchmark("ber"), runs=30, values=(20, 40))
        assert series.bound is not None
        assert len(series.points) == 2
        assert series.bound_dominates(slack=0.10)
        csv_text = series.to_csv()
        assert "measured_mean" in csv_text.splitlines()[0]

    def test_appendix_series_subset(self):
        series_list = appendix_f_series(names=["linear01", "ber"], runs=20)
        assert {series.benchmark for series in series_list} == {"linear01", "ber"}

    def test_figure8_histogram_quick(self):
        figure = figure8_histogram(runs=300, n=30)
        assert figure.counts.sum() == 300
        assert figure.runs == 300
        assert figure.unfinished_runs == 0
        assert figure.bound_value >= figure.measured_mean - 5

    def test_figure8_histogram_vec_engine(self):
        figure = figure8_histogram(runs=300, n=30, engine="vec")
        assert figure.counts.sum() == 300
        assert figure.bound_value >= figure.measured_mean - 10

    def test_figure8_histogram_samples_simulation_variant(self):
        # Regression: the histogram used to sample ``benchmark.build()``,
        # the *analysis* variant.  For a resource-counter benchmark that
        # variant counts no ticks at all, so the histogram silently
        # measured the wrong program.  ``trader`` is exactly that case.
        from repro.bench import figures

        figure = figures.figure8_histogram(
            runs=20, seed=0, benchmark="trader",
            state={"s": 120, "smin": 100})
        assert figure.benchmark == "trader"
        assert figure.measured_mean > 0     # analysis variant measures 0

    def test_figure8_trader_surface_quick(self):
        points = figure8_trader_surface(s_values=(120,), smin_values=(100,), runs=30)
        assert len(points) == 1
        assert points[0].bound_value > 0

    def test_figure8_pol04_quick(self):
        series = figure8_pol04_series(runs=30, values=(10, 20))
        assert len(series.points) == 2
        assert series.bound is not None and series.bound.degree() == 2

    def test_sweep_series_spawns_point_seeds(self, monkeypatch):
        # Regression: sweep points used to derive seeds as ``seed + index``
        # (correlated streams); they must now receive SeedSequence children.
        import numpy as np

        from repro.bench import figures

        seen = []

        def spy(program, state, runs, seed, max_steps, engine):
            seen.append(seed)
            from repro.semantics.sampler import SampleStatistics
            return SampleStatistics(1, 0, 1, 1, 1, 1, 1, runs, 0)

        monkeypatch.setattr(figures, "estimate_expected_cost", spy)
        figures.sweep_series(get_benchmark("ber"), runs=5, values=(10, 20, 30))
        assert len(seen) == 3
        assert all(isinstance(seed, np.random.SeedSequence) for seed in seen)
        keys = {tuple(seed.generate_state(2)) for seed in seen}
        assert len(keys) == 3

    def test_sweep_series_csv_reports_unfinished(self):
        series = sweep_series(get_benchmark("ber"), runs=10, values=(20,))
        assert "unfinished_runs" in series.to_csv().splitlines()[0]
        assert series.unfinished_runs() == 0

    def test_sweep_series_vec_engine_matches_scalar_closely(self):
        scalar = sweep_series(get_benchmark("ber"), runs=400, values=(30,))
        vec = sweep_series(get_benchmark("ber"), runs=400, values=(30,),
                           engine="vec")
        assert vec.points[0].measured.mean == pytest.approx(
            scalar.points[0].measured.mean, rel=0.1)


class TestPerfSmoke:
    def test_perfsmoke_limit_two(self, tmp_path):
        import json

        from repro.bench.perfsmoke import main, run_suite

        output = tmp_path / "bench.json"
        assert main(["--limit", "2", "--quiet",
                     "--output", str(output)]) == 0
        report = json.loads(output.read_text())
        assert report["suite"] == "table1-linear"
        assert len(report["programs"]) == 2
        for program in report["programs"]:
            assert program["success"]
            assert program["wall_seconds"] >= 0
            assert program["fm_queries"] >= 0
        assert "hit_rate" in report["entailment_cache"]

    def test_run_suite_counts_queries(self):
        from repro.bench.perfsmoke import run_suite

        report = run_suite("linear", limit=1)
        assert report["programs"][0]["fm_queries"] >= 0
        assert report["total_wall_seconds"] >= 0
        assert report["workers"] == 1
        assert report["suite_wall_parallel"] is None

    def test_programs_filter(self, tmp_path):
        from repro.bench.perfsmoke import main

        output = tmp_path / "bench.json"
        assert main(["--programs", "ber", "rdwalk", "--quiet",
                     "--output", str(output)]) == 0
        import json

        report = json.loads(output.read_text())
        assert sorted(p["name"] for p in report["programs"]) \
            == ["ber", "rdwalk"]

    def test_programs_filter_unknown_selector(self, tmp_path, capsys):
        from repro.bench.perfsmoke import main

        assert main(["--programs", "nope-such-bench", "--quiet",
                     "--output", str(tmp_path / "b.json")]) == 2

    def test_sampler_pass_records_throughput(self, tmp_path):
        import json

        from repro.bench.perfsmoke import main

        output = tmp_path / "bench.json"
        # Assert the report shape only -- the actual >=5x throughput claim
        # is enforced by the dedicated perfsmoke --sampler CI gate at 10k
        # runs; re-asserting a wall-clock ratio here at 400 runs would make
        # the unit suite timing-dependent.
        assert main(["--programs", "ber", "--quiet", "--sampler",
                     "--sampler-runs", "400",
                     "--sampler-min-speedup", "0",
                     "--output", str(output)]) == 0
        report = json.loads(output.read_text())
        sampler = report["sampler"]
        assert sampler["benchmark"] == "rdwalk"
        assert sampler["runs"] == 400
        assert sampler["wall_scalar"] > 0 and sampler["wall_vec"] > 0
        assert sampler["speedup"] > 0
        assert sampler["unfinished_scalar"] == 0
        assert sampler["unfinished_vec"] == 0

    def test_sampler_gate_fails_on_impossible_speedup(self, tmp_path, capsys):
        from repro.bench.perfsmoke import main

        assert main(["--programs", "ber", "--quiet", "--sampler",
                     "--sampler-runs", "200",
                     "--sampler-min-speedup", "1e9",
                     "--output", str(tmp_path / "bench.json")]) == 1
        assert "sampler throughput gate FAILED" in capsys.readouterr().err

    def test_sampler_section_absent_by_default(self, tmp_path):
        import json

        from repro.bench.perfsmoke import main

        output = tmp_path / "bench.json"
        assert main(["--limit", "1", "--quiet",
                     "--output", str(output)]) == 0
        assert json.loads(output.read_text())["sampler"] is None

    def test_parallel_pass_records_suite_wall(self, tmp_path):
        import json

        from repro.bench.perfsmoke import main

        output = tmp_path / "bench.json"
        assert main(["--limit", "2", "--workers", "2", "--quiet",
                     "--output", str(output)]) == 0
        report = json.loads(output.read_text())
        assert report["workers"] == 2
        assert report["suite_wall_parallel"] > 0
        assert all("parallel_wall_seconds" in p for p in report["programs"])


class TestPerfCheck:
    def _report(self, times):
        return {"programs": [{"name": name, "wall_seconds": wall}
                             for name, wall in times.items()]}

    def test_no_regression(self):
        from repro.bench.perfsmoke import find_regressions

        baseline = self._report({"a": 1.0, "b": 0.2})
        fresh = self._report({"a": 1.1, "b": 0.21})
        assert find_regressions(fresh, baseline) == []

    def test_flags_large_regression(self):
        from repro.bench.perfsmoke import find_regressions

        baseline = self._report({"a": 1.0})
        fresh = self._report({"a": 1.5})
        problems = find_regressions(fresh, baseline)
        assert len(problems) == 1 and "a:" in problems[0]

    def test_absolute_floor_suppresses_tiny_jitter(self):
        from repro.bench.perfsmoke import find_regressions

        # +100% but only +20ms: below the absolute floor, not flagged.
        baseline = self._report({"tiny": 0.02})
        fresh = self._report({"tiny": 0.04})
        assert find_regressions(fresh, baseline) == []

    def test_new_programs_are_skipped(self):
        from repro.bench.perfsmoke import find_regressions

        assert find_regressions(self._report({"new": 9.9}),
                                self._report({"old": 0.1})) == []

    def test_check_cli_against_self(self, tmp_path):
        from repro.bench.perfsmoke import main

        output = tmp_path / "bench.json"
        assert main(["--limit", "2", "--quiet",
                     "--output", str(output)]) == 0
        # A fresh run checked against itself-as-baseline cannot regress
        # by more than the threshold (same machine, seconds apart).
        again = tmp_path / "again.json"
        assert main(["--limit", "2", "--quiet", "--output", str(again),
                     "--check", str(output)]) == 0

    def test_check_missing_baseline(self, tmp_path):
        from repro.bench.perfsmoke import main

        assert main(["--limit", "1", "--quiet",
                     "--output", str(tmp_path / "b.json"),
                     "--check", str(tmp_path / "missing.json")]) == 2

    def test_check_when_output_equals_baseline_path(self, tmp_path):
        """--check must read the baseline before --output overwrites it."""
        import json

        from repro.bench.perfsmoke import main

        shared = tmp_path / "bench.json"
        # roulette is the slowest linear benchmark (~0.6s), comfortably
        # above the absolute regression floor.
        assert main(["--programs", "roulette", "--quiet",
                     "--output", str(shared)]) == 0
        # Doctor the baseline into an impossible-to-meet budget: if the
        # gate compared the fresh run against itself it would pass.
        record = json.loads(shared.read_text())
        for program in record["programs"]:
            program["wall_seconds"] = 1e-9
        shared.write_text(json.dumps(record))
        assert main(["--programs", "roulette", "--quiet",
                     "--output", str(shared), "--check", str(shared)]) == 1


class TestTable1Workers:
    def test_workers_path_matches_sequential(self):
        from repro.bench.table1 import run_table1

        sequential = run_table1(names=["ber", "rdwalk"], simulate=False)
        scheduled = run_table1(names=["ber", "rdwalk"], simulate=False,
                               workers=0)
        assert [(r.name, r.bound) for r in sequential] \
            == [(r.name, r.bound) for r in scheduled]
        assert all(r.success for r in scheduled)

    def test_workers_path_simulates(self):
        from repro.bench.table1 import run_table1

        rows = run_table1(names=["linear01"], runs=30, workers=0)
        assert rows[0].measurements
        assert rows[0].error_percent == rows[0].error_percent  # not NaN

    def test_row_status_property(self):
        from repro.bench.table1 import Table1Row

        ok = Table1Row("x", "linear", "b", "b", 0.0, None, 0.1, None,
                       True, "paper")
        bad = Table1Row("x", "linear", None, "b", 0.0, None, 0.1, None,
                        False, "paper", message="nope",
                        failure_kind="no-bound")
        assert ok.status == "ok" and bad.status == "no-bound"
