"""Tests for the benchmark registry and the shape of every benchmark program."""

import pytest

from repro.bench.registry import (
    all_benchmarks,
    benchmark_names,
    get_benchmark,
    linear_benchmarks,
    polynomial_benchmarks,
)
from repro.lang import ast
from repro.semantics.interp import run_program

#: The 39 program names of the paper's Table 1.
TABLE1_NAMES = {
    # linear
    "2drwalk", "bayesian", "ber", "bin", "C4B_t09", "C4B_t13", "C4B_t15",
    "C4B_t19", "C4B_t30", "C4B_t61", "condand", "cooling", "fcall", "filling",
    "hyper", "linear01", "miner", "prdwalk", "prnes", "prseq", "prseq_bin",
    "prspeed", "race", "rdseql", "rdspeed", "rdwalk", "robot", "roulette",
    "sampling", "sprdwalk",
    # polynomial
    "complex", "multirace", "pol04", "pol05", "pol06", "pol07", "rdbub",
    "recursive", "trader",
}


class TestRegistryStructure:
    def test_exactly_39_benchmarks(self):
        assert len(all_benchmarks()) == 39

    def test_names_match_table1(self):
        assert set(benchmark_names()) == TABLE1_NAMES

    def test_group_sizes_match_table1(self):
        assert len(linear_benchmarks()) == 30
        assert len(polynomial_benchmarks()) == 9

    def test_lookup_and_unknown(self):
        assert get_benchmark("rdwalk").name == "rdwalk"
        with pytest.raises(KeyError):
            get_benchmark("does-not-exist")

    def test_every_benchmark_has_paper_bound_and_description(self):
        for benchmark in all_benchmarks():
            assert benchmark.paper_bound
            assert benchmark.description
            assert benchmark.source in ("paper", "reconstructed")

    def test_every_benchmark_has_simulation_plan(self):
        for benchmark in all_benchmarks():
            plan = benchmark.simulation
            assert plan is not None
            assert plan.sweep_values
            assert plan.swept_variable

    def test_factories_produce_fresh_programs(self):
        benchmark = get_benchmark("rdwalk")
        first, second = benchmark.build(), benchmark.build()
        first_ids = {node.node_id for node in first.iter_nodes()}
        second_ids = {node.node_id for node in second.iter_nodes()}
        assert first_ids.isdisjoint(second_ids)

    def test_polynomial_benchmarks_request_degree_two(self):
        for benchmark in polynomial_benchmarks():
            assert benchmark.analyzer_options.get("max_degree") == 2


class TestBenchmarkProgramsAreWellFormed:
    @pytest.mark.parametrize("name", sorted(TABLE1_NAMES))
    def test_builds_valid_program(self, name):
        program = get_benchmark(name).build()
        assert isinstance(program, ast.Program)
        assert program.main in program.procedures

    @pytest.mark.parametrize("name", sorted(TABLE1_NAMES))
    def test_program_is_probabilistic_or_calls(self, name):
        """Every benchmark exercises at least one probabilistic construct
        (a sampling assignment or probabilistic branching)."""
        program = get_benchmark(name).build()
        nodes = list(program.iter_nodes())
        assert any(isinstance(node, (ast.Sample, ast.ProbChoice)) for node in nodes)

    @pytest.mark.parametrize("name", sorted(TABLE1_NAMES))
    def test_short_simulation_run_terminates(self, name):
        """Each benchmark executes and terminates on a small input."""
        benchmark = get_benchmark(name)
        plan = benchmark.simulation
        state = dict(plan.fixed_state)
        smallest = min(plan.sweep_values, key=abs)
        state[plan.swept_variable] = smallest
        result = run_program(benchmark.build(), state, seed=3,
                             max_steps=plan.max_steps)
        assert result.terminated
        assert result.cost >= 0
