"""Tests for derivation certificates and the certificate checker."""

from fractions import Fraction

import pytest

from repro import analyze_program, check_certificate
from repro.core.certificates import assert_certificate
from repro.lang import builder as B
from repro.lang.errors import CertificateError
from repro.logic.contexts import Context
from repro.utils.linear import LinExpr
from repro.utils.polynomials import Polynomial
from repro.core.certificates import Certificate, WeakenEvidence


class TestCertificateContents:
    def test_certificate_annotates_every_rule_application(self, simple_random_walk):
        result = analyze_program(simple_random_walk)
        certificate = result.certificate
        assert len(certificate.points) >= 4          # loop, branch, assigns, tick
        rules = {point.rule for point in certificate.points}
        assert any("while" in rule for rule in rules)
        assert any("tick" in rule for rule in rules)

    def test_initial_annotation_matches_reported_bound(self, simple_random_walk):
        result = analyze_program(simple_random_walk)
        # The annotation attached to the outermost command is the bound.
        root = result.certificate.points[-1]
        assert root.pre.evaluate({"x": 10}) == result.bound.evaluate({"x": 10})

    def test_weakenings_recorded(self, race_program):
        result = analyze_program(race_program)
        assert len(result.certificate.weakenings) >= 2    # loop head + loop exit
        for evidence in result.certificate.weakenings:
            assert isinstance(evidence.context, Context)

    def test_annotation_lookup_by_node(self, simple_random_walk):
        result = analyze_program(simple_random_walk)
        node_ids = {point.node_id for point in result.certificate.points}
        for node_id in node_ids:
            assert result.certificate.annotation_at(node_id) is not None
        assert result.certificate.annotation_at(-1) is None


class TestCertificateChecker:
    @pytest.mark.parametrize("fixture_name", [
        "simple_random_walk", "rdwalk_program", "race_program",
        "deterministic_countdown", "geometric_program"])
    def test_valid_certificates_pass(self, fixture_name, request):
        program = request.getfixturevalue(fixture_name)
        result = analyze_program(program)
        assert result.success
        assert check_certificate(result.certificate, samples=20, seed=1) == []

    def test_assert_certificate_passes(self, simple_random_walk):
        result = analyze_program(simple_random_walk)
        assert_certificate(result.certificate, samples=10)

    def test_tampered_combination_is_rejected(self, simple_random_walk):
        result = analyze_program(simple_random_walk)
        certificate = result.certificate
        evidence = certificate.weakenings[0]
        tampered = WeakenEvidence(
            origin=evidence.origin,
            context=evidence.context,
            stronger=evidence.stronger,
            weaker=evidence.weaker + Polynomial.constant(5),
            combination=evidence.combination)
        bad = Certificate(bound=certificate.bound, points=certificate.points,
                          weakenings=[tampered])
        problems = check_certificate(bad, samples=10)
        assert problems

    def test_tampered_rewrite_is_rejected(self, simple_random_walk):
        result = analyze_program(simple_random_walk)
        certificate = result.certificate
        evidence = certificate.weakenings[0]
        # Claim a negative "rewrite function" was used with weight 1.
        negative = Polynomial.constant(-3)
        tampered = WeakenEvidence(
            origin=evidence.origin,
            context=evidence.context,
            stronger=evidence.stronger + negative,
            weaker=evidence.weaker,
            combination=list(evidence.combination) + [(Fraction(1), negative, "bogus")])
        bad = Certificate(bound=certificate.bound, points=[], weakenings=[tampered])
        problems = check_certificate(bad, samples=10)
        assert any("non-negative" in problem or "mismatch" in problem
                   for problem in problems)

    def test_assert_certificate_raises_on_problems(self, simple_random_walk):
        result = analyze_program(simple_random_walk)
        evidence = result.certificate.weakenings[0]
        tampered = WeakenEvidence(evidence.origin, evidence.context,
                                  evidence.stronger,
                                  evidence.weaker + Polynomial.constant(1),
                                  evidence.combination)
        bad = Certificate(bound=result.certificate.bound, points=[],
                          weakenings=[tampered])
        with pytest.raises(CertificateError):
            assert_certificate(bad, samples=10)
