"""Tests for the command-line front end."""

import pytest

from repro.cli import build_parser, main

RDWALK_SOURCE = """
proc main(x, n) {
    while (x < n) {
        prob(3/4) { x = x + 1; } else { x = x - 1; }
        tick(1);
    }
}
"""

COUNTER_SOURCE = """
proc main(n) {
    assume(n >= 0);
    while (n > 0) {
        cost = cost + 1;
        n = n - 1;
    }
}
"""


@pytest.fixture
def rdwalk_file(tmp_path):
    path = tmp_path / "rdwalk.imp"
    path.write_text(RDWALK_SOURCE)
    return str(path)


class TestParserConstruction:
    def test_parser_has_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["list"])
        assert args.command == "list"

    def test_analyze_defaults(self):
        args = build_parser().parse_args(["analyze", "prog.imp"])
        assert args.degree == 1
        assert not args.certificate


class TestAnalyzeCommand:
    def test_analyze_program_file(self, rdwalk_file, capsys):
        exit_code = main(["analyze", rdwalk_file])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "expected cost bound" in output
        assert "|[x, n" in output

    def test_analyze_with_certificate(self, rdwalk_file, capsys):
        exit_code = main(["analyze", rdwalk_file, "--certificate"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "certificate check passed" in output

    def test_analyze_with_counter(self, tmp_path, capsys):
        path = tmp_path / "counter.imp"
        path.write_text(COUNTER_SOURCE)
        exit_code = main(["analyze", str(path), "--counter", "cost"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "|[0, n]|" in output

    def test_analyze_failure_exit_code(self, tmp_path, capsys):
        path = tmp_path / "bad.imp"
        path.write_text("proc main(x) { assume(x >= 1); while (x > 0) { tick(1); } }")
        exit_code = main(["analyze", str(path), "--no-auto-degree"])
        assert exit_code == 1
        assert "no bound" in capsys.readouterr().out


class TestSimulateCommand:
    def test_simulate(self, rdwalk_file, capsys):
        exit_code = main(["simulate", rdwalk_file, "--input", "x=0", "n=20",
                          "--runs", "50", "--seed", "1"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "mean cost" in output

    def test_bad_input_assignment(self, rdwalk_file):
        with pytest.raises(SystemExit):
            main(["simulate", rdwalk_file, "--input", "x"])


class TestListAndBench:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "rdwalk" in output and "trader" in output

    def test_bench_named_subset(self, capsys):
        exit_code = main(["bench", "--names", "ber", "--quick"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Linear programs" in output
        assert "ber" in output
