"""Tests for the command-line front end."""

import pytest

from repro.cli import (EXIT_ANALYSIS_ERROR, EXIT_NO_BOUND, EXIT_PARSE_ERROR,
                       build_parser, exit_code_for_statuses, main)

RDWALK_SOURCE = """
proc main(x, n) {
    while (x < n) {
        prob(3/4) { x = x + 1; } else { x = x - 1; }
        tick(1);
    }
}
"""

COUNTER_SOURCE = """
proc main(n) {
    assume(n >= 0);
    while (n > 0) {
        cost = cost + 1;
        n = n - 1;
    }
}
"""


NESTED_SOURCE = """
proc main(n) {
    while (n > 0) {
        n = n - 1;
        m = n;
        while (m > 0) { m = m - 1; tick(1); }
    }
}
"""


@pytest.fixture
def rdwalk_file(tmp_path):
    path = tmp_path / "rdwalk.imp"
    path.write_text(RDWALK_SOURCE)
    return str(path)


class TestParserConstruction:
    def test_parser_has_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["list"])
        assert args.command == "list"

    def test_analyze_defaults(self):
        args = build_parser().parse_args(["analyze", "prog.imp"])
        assert args.degree == 1
        assert not args.certificate


class TestAnalyzeCommand:
    def test_analyze_program_file(self, rdwalk_file, capsys):
        exit_code = main(["analyze", rdwalk_file])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "expected cost bound" in output
        assert "|[x, n" in output

    def test_analyze_with_certificate(self, rdwalk_file, capsys):
        exit_code = main(["analyze", rdwalk_file, "--certificate"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "certificate check passed" in output

    def test_analyze_with_counter(self, tmp_path, capsys):
        path = tmp_path / "counter.imp"
        path.write_text(COUNTER_SOURCE)
        exit_code = main(["analyze", str(path), "--counter", "cost"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "|[0, n]|" in output

    def test_analyze_no_bound_exit_code(self, tmp_path, capsys):
        path = tmp_path / "bad.imp"
        path.write_text("proc main(x) { assume(x >= 1); while (x > 0) { tick(1); } }")
        exit_code = main(["analyze", str(path), "--no-auto-degree"])
        assert exit_code == EXIT_NO_BOUND
        assert "no bound" in capsys.readouterr().out

    def test_analyze_parse_error_exit_code(self, tmp_path, capsys):
        path = tmp_path / "broken.imp"
        path.write_text("proc main( {")
        exit_code = main(["analyze", str(path)])
        assert exit_code == EXIT_PARSE_ERROR
        assert "parse error" in capsys.readouterr().err

    def test_analyze_degree_limit_allows_escalation(self, tmp_path, capsys):
        path = tmp_path / "nested.imp"
        path.write_text(NESTED_SOURCE)
        exit_code = main(["analyze", str(path), "--degree", "1",
                          "--degree-limit", "2"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "degree: 2 (attempted [1, 2])" in output
        assert "escalation reused" in output

    def test_analyze_degree_limit_caps_escalation(self, tmp_path, capsys):
        path = tmp_path / "nested.imp"
        path.write_text(NESTED_SOURCE)
        exit_code = main(["analyze", str(path), "--degree", "1",
                          "--degree-limit", "1"])
        assert exit_code == EXIT_NO_BOUND
        assert "no bound" in capsys.readouterr().out

    def test_exit_codes_are_distinct(self):
        codes = {EXIT_PARSE_ERROR, EXIT_NO_BOUND, EXIT_ANALYSIS_ERROR}
        assert len(codes) == 3 and 0 not in codes and 1 not in codes

    def test_exit_code_aggregation(self):
        assert exit_code_for_statuses(["ok", "ok"]) == 0
        assert exit_code_for_statuses(["ok", "no-bound"]) == EXIT_NO_BOUND
        assert exit_code_for_statuses(
            ["no-bound", "parse-error"]) == EXIT_PARSE_ERROR
        assert exit_code_for_statuses(
            ["ok", "analysis-error"]) == EXIT_ANALYSIS_ERROR
        assert exit_code_for_statuses(["ok", "timeout"]) == 1


class TestSimulateCommand:
    def test_simulate(self, rdwalk_file, capsys):
        exit_code = main(["simulate", rdwalk_file, "--input", "x=0", "n=20",
                          "--runs", "50", "--seed", "1"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "mean cost" in output

    def test_simulate_vec_engine(self, rdwalk_file, capsys):
        exit_code = main(["simulate", rdwalk_file, "--input", "x=0", "n=20",
                          "--runs", "50", "--seed", "1", "--engine", "vec"])
        assert exit_code == 0
        assert "mean cost" in capsys.readouterr().out

    def test_bad_input_assignment(self, rdwalk_file):
        with pytest.raises(SystemExit):
            main(["simulate", rdwalk_file, "--input", "x"])

    def test_simulate_vec_on_unvectorisable_program_fails_cleanly(
            self, tmp_path, capsys):
        path = tmp_path / "huge.imp"
        path.write_text(f"proc main() {{ tick({2 ** 60}); }}")
        exit_code = main(["simulate", str(path), "--runs", "2",
                          "--engine", "vec"])
        assert exit_code == 1
        assert "vectorised engine cannot run" in capsys.readouterr().err


class TestSampleCommand:
    def test_sample_program_file(self, rdwalk_file, capsys):
        exit_code = main(["sample", rdwalk_file, "--input", "x=0", "n=20",
                          "--runs", "200", "--engine", "vec"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "engine=vec" in output
        assert "mean cost" in output

    def test_sample_registry_benchmark(self, capsys):
        exit_code = main(["sample", "rdwalk", "--input", "x=0", "n=10",
                          "--runs", "100"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "rdwalk" in output

    def test_sample_batch_size_stability(self, capsys):
        main(["sample", "rdwalk", "--input", "x=0", "n=10",
              "--runs", "64", "--engine", "vec"])
        whole = capsys.readouterr().out.splitlines()[1]
        main(["sample", "rdwalk", "--input", "x=0", "n=10",
              "--runs", "64", "--engine", "vec", "--batch-size", "7"])
        split = capsys.readouterr().out.splitlines()[1]
        assert whole == split

    def test_sample_reports_unfinished_runs(self, tmp_path, capsys):
        path = tmp_path / "spin.imp"
        path.write_text("proc main() { x = 1; while (x > 0) { tick(1); } }")
        exit_code = main(["sample", str(path), "--runs", "3",
                          "--max-steps", "500"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "unfinished runs" in output and "3" in output

    def test_sample_auto_reports_scalar_fallback(self, tmp_path, capsys):
        path = tmp_path / "huge.imp"
        path.write_text(f"proc main() {{ tick({2 ** 60}); }}")
        exit_code = main(["sample", str(path), "--runs", "2"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "engine=scalar (fallback from auto)" in output

    def test_sample_auto_falls_back_on_runtime_overflow(self, tmp_path, capsys):
        path = tmp_path / "double.imp"
        path.write_text(
            "proc main() { x = 1; n = 70; "
            "while (n > 0) { x = x + x; n = n - 1; } tick(1); }")
        exit_code = main(["sample", str(path), "--runs", "2"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "engine=scalar (fallback from auto)" in output

    def test_sample_vec_runtime_overflow_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "double.imp"
        path.write_text(
            "proc main() { x = 1; n = 70; "
            "while (n > 0) { x = x + x; n = n - 1; } tick(1); }")
        exit_code = main(["sample", str(path), "--runs", "2",
                          "--engine", "vec"])
        assert exit_code == 1
        assert "vectorised engine cannot run" in capsys.readouterr().err

    def test_sample_unknown_target(self):
        with pytest.raises(SystemExit, match="neither a program file"):
            main(["sample", "no-such-thing"])

    def test_sample_parse_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.imp"
        bad.write_text("proc main( {")
        assert main(["sample", str(bad)]) == EXIT_PARSE_ERROR


class TestFiguresCommand:
    def test_figures_appendix_subset(self, capsys):
        exit_code = main(["figures", "--figure", "appendix",
                          "--names", "ber", "--runs", "20",
                          "--engine", "vec"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "# ber" in output
        assert "measured_mean" in output


class TestListAndBench:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "rdwalk" in output and "trader" in output

    def test_list_is_sorted(self, capsys):
        main(["list"])
        names = capsys.readouterr().out.splitlines()
        assert names == sorted(names)

    def test_bench_named_subset(self, capsys):
        exit_code = main(["bench", "--names", "ber", "--quick"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Linear programs" in output
        assert "ber" in output

    def test_bench_with_workers(self, capsys):
        exit_code = main(["bench", "--names", "ber", "rdwalk",
                          "--no-simulation", "--workers", "0"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "rdwalk" in output


class TestBatchCommand:
    def test_batch_directory_with_cache(self, tmp_path, capsys):
        programs = tmp_path / "programs"
        programs.mkdir()
        (programs / "walk.imp").write_text(RDWALK_SOURCE)
        (programs / "count.imp").write_text(COUNTER_SOURCE.replace(
            "cost = cost + 1;", "tick(1);"))
        cache = tmp_path / "cache"

        exit_code = main(["batch", str(programs),
                          "--cache-dir", str(cache)])
        first = capsys.readouterr().out
        assert exit_code == 0
        assert "computed" in first
        assert "0 served from store" in first

        exit_code = main(["batch", str(programs), "--cache-dir", str(cache)])
        second = capsys.readouterr().out
        assert exit_code == 0
        assert "2 served from store" in second
        assert "100% hit rate" in second

    def test_batch_registry_selector(self, tmp_path, capsys):
        exit_code = main(["batch", "ber", "--no-cache", "--quiet",
                          "--json", str(tmp_path / "out.json")])
        assert exit_code == 0
        import json

        payload = json.loads((tmp_path / "out.json").read_text())
        assert payload["results"][0]["name"] == "ber"
        assert payload["results"][0]["status"] == "ok"

    def test_batch_parse_error_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "bad.imp"
        bad.write_text("proc main( {")
        exit_code = main(["batch", str(bad), "--no-cache", "--quiet"])
        assert exit_code == EXIT_PARSE_ERROR

    def test_batch_unknown_selector(self):
        with pytest.raises(SystemExit):
            main(["batch", "no-such-benchmark", "--no-cache"])

    def test_batch_timeout_needs_workers(self, capsys):
        # Rejected at argument-parse time: conventional usage-error exit
        # code 2 plus a clear message on stderr.
        with pytest.raises(SystemExit) as excinfo:
            main(["batch", "ber", "--no-cache", "--timeout", "5"])
        assert excinfo.value.code == 2
        assert "--workers" in capsys.readouterr().err


class TestDomainSelection:
    """--domain plumbing: analyze/batch/serve, unknown-domain handling."""

    def test_analyze_with_each_domain(self, rdwalk_file, capsys):
        bounds = {}
        for domain in ("fm", "polyhedra"):
            exit_code = main(["analyze", rdwalk_file, "--domain", domain])
            output = capsys.readouterr().out
            assert exit_code == 0
            bounds[domain] = [line for line in output.splitlines()
                              if "expected cost bound" in line]
        # Both exact backends must print the identical bound line.
        assert bounds["fm"] == bounds["polyhedra"]

    def test_analyze_unknown_domain_exit_code(self, rdwalk_file, capsys):
        # argparse rejects values outside the registered domain choices.
        with pytest.raises(SystemExit) as excinfo:
            main(["analyze", rdwalk_file, "--domain", "octagons"])
        assert excinfo.value.code == 2
        assert "octagons" in capsys.readouterr().err

    def test_batch_domain_is_part_of_cache_key(self, tmp_path, capsys):
        programs = tmp_path / "programs"
        programs.mkdir()
        (programs / "walk.imp").write_text(RDWALK_SOURCE)
        cache = tmp_path / "cache"

        assert main(["batch", str(programs), "--cache-dir", str(cache),
                     "--domain", "fm"]) == 0
        first = capsys.readouterr().out
        assert "computed" in first

        # Same program under the other domain: a cache MISS, not a hit.
        assert main(["batch", str(programs), "--cache-dir", str(cache),
                     "--domain", "polyhedra"]) == 0
        second = capsys.readouterr().out
        assert "0 served from store" in second

        # Re-running either domain hits its own record.
        assert main(["batch", str(programs), "--cache-dir", str(cache),
                     "--domain", "polyhedra"]) == 0
        third = capsys.readouterr().out
        assert "1 served from store" in third

    def test_batch_unknown_domain_exit_code(self, tmp_path):
        program = tmp_path / "walk.imp"
        program.write_text(RDWALK_SOURCE)
        with pytest.raises(SystemExit) as excinfo:
            main(["batch", str(program), "--no-cache", "--domain", "intervals"])
        assert excinfo.value.code == 2

    def test_serve_forwards_domain_default(self, monkeypatch):
        captured = {}

        def fake_serve(store=None, workers=0, default_options=None):
            captured["options"] = default_options
            return 0

        import repro.service.server as server

        monkeypatch.setattr(server, "serve_stdio", fake_serve)
        assert main(["serve", "--no-cache", "--domain", "polyhedra"]) == 0
        assert captured["options"] == {"domain": "polyhedra"}

    def test_serve_request_domain_in_job_hash(self):
        import io
        import json as json_module

        from repro.service.server import AnalysisServer

        requests = "\n".join(
            json_module.dumps({"op": "analyze", "id": index,
                               "source": RDWALK_SOURCE,
                               "options": {"domain": domain}})
            for index, domain in enumerate(("fm", "polyhedra"))) + "\n"
        output = io.StringIO()
        AnalysisServer().serve(io.StringIO(requests), output)
        records = [json_module.loads(line)
                   for line in output.getvalue().splitlines()]
        assert all(record["status"] == "ok" for record in records)
        hashes = {record["result"]["job_hash"] for record in records}
        domains = {record["result"]["domain"] for record in records}
        assert len(hashes) == 2        # domain participates in the hash
        assert domains == {"fm", "polyhedra"}
        bounds = {record["result"]["bound"]["pretty"] for record in records}
        assert len(bounds) == 1        # ... but the bound is identical


class TestStoreCommand:
    def _seed(self, tmp_path):
        cache = tmp_path / "cache"
        program = tmp_path / "walk.imp"
        program.write_text(RDWALK_SOURCE)
        assert main(["batch", str(program), "--cache-dir", str(cache),
                     "--quiet"]) == 0
        return cache

    def test_store_stats(self, tmp_path, capsys):
        cache = self._seed(tmp_path)
        assert main(["store", "stats", "--cache-dir", str(cache)]) == 0
        output = capsys.readouterr().out
        assert "records: 1" in output
        assert "quarantined: 0" in output

    def test_store_stats_json(self, tmp_path, capsys):
        import json as json_module

        cache = self._seed(tmp_path)
        assert main(["store", "stats", "--cache-dir", str(cache),
                     "--json"]) == 0
        payload = json_module.loads(capsys.readouterr().out)
        assert payload["entries"] == 1
        assert payload["total_bytes"] > 0
        assert payload["quarantine_records"] == 0

    def test_store_prune_by_size(self, tmp_path, capsys):
        cache = self._seed(tmp_path)
        assert main(["store", "prune", "--cache-dir", str(cache),
                     "--max-bytes", "0"]) == 0
        assert "pruned 1" in capsys.readouterr().out
        assert main(["store", "stats", "--cache-dir", str(cache),
                     "--json"]) == 0

    def test_store_prune_by_age_keeps_fresh_records(self, tmp_path, capsys):
        cache = self._seed(tmp_path)
        assert main(["store", "prune", "--cache-dir", str(cache),
                     "--max-age", "7d"]) == 0
        assert "1 kept" in capsys.readouterr().out

    def test_store_prune_needs_a_criterion(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["store", "prune", "--cache-dir", str(tmp_path)])

    def test_store_prune_rejects_bad_units(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["store", "prune", "--cache-dir", str(tmp_path),
                  "--max-age", "7fortnights"])


class TestServeGatewayFlags:
    def test_gateway_flags_require_async(self):
        for flags in (["--port", "1"], ["--host", "::1"],
                      ["--queue-limit", "4"], ["--hot-cache-size", "4"],
                      ["--timeout", "1"], ["--retry-budget", "2"]):
            with pytest.raises(SystemExit) as excinfo:
                main(["serve", *flags])
            assert excinfo.value.code == 2

    def test_async_forwards_gateway_config(self, monkeypatch):
        captured = {}

        def fake_run_gateway(**kwargs):
            captured.update(kwargs)
            return 0

        import repro.service.gateway as gateway

        monkeypatch.setattr(gateway, "run_gateway", fake_run_gateway)
        assert main(["serve", "--async", "--no-cache", "--port", "0",
                     "--queue-limit", "7", "--hot-cache-size", "3",
                     "--domain", "fm"]) == 0
        assert captured["port"] == 0
        assert captured["queue_limit"] == 7
        assert captured["hot_cache_size"] == 3
        assert captured["default_options"] == {"domain": "fm"}
        assert captured["store"] is None
