"""Tests for guard-fact extraction and the abstract interpreter."""

from repro.lang import ast
from repro.lang import builder as B
from repro.lang.distributions import Uniform
from repro.lang.parser import parse_expr
from repro.logic.absint import AbstractInterpreter
from repro.logic.conditions import (
    facts_from_condition,
    negated_facts_from_condition,
)
from repro.utils.linear import LinExpr


def lin(coeffs=None, const=0):
    return LinExpr(coeffs or {}, const)


class TestFactsFromConditions:
    def test_strict_less(self):
        facts = facts_from_condition(parse_expr("x < n"))
        assert facts == [lin({"n": 1, "x": -1}, -1)]

    def test_less_equal(self):
        assert facts_from_condition(parse_expr("x <= n")) == [lin({"n": 1, "x": -1})]

    def test_equality_gives_two_facts(self):
        assert len(facts_from_condition(parse_expr("x == 3"))) == 2

    def test_disequality_gives_nothing(self):
        assert facts_from_condition(parse_expr("x != 3")) == []

    def test_conjunction_concatenates(self):
        facts = facts_from_condition(parse_expr("x > 0 && y > 0"))
        assert len(facts) == 2

    def test_disjunction_gives_nothing(self):
        assert facts_from_condition(parse_expr("x > 0 || y > 0")) == []

    def test_star_gives_nothing(self):
        assert facts_from_condition(ast.Star()) == []

    def test_star_conjunction_keeps_deterministic_part(self):
        facts = facts_from_condition(parse_expr("y >= 100 && *"))
        assert facts == [lin({"y": 1}, -100)]

    def test_false_constant_marks_unreachable(self):
        facts = facts_from_condition(ast.Const(0))
        assert any(fact.is_constant() and fact.const_term < 0 for fact in facts)

    def test_negation_of_less(self):
        facts = negated_facts_from_condition(parse_expr("x < n"))
        assert facts == [lin({"x": 1, "n": -1})]

    def test_negation_of_disjunction(self):
        facts = negated_facts_from_condition(parse_expr("x > 0 || y > 0"))
        assert len(facts) == 2

    def test_negation_of_conjunction_gives_nothing(self):
        assert negated_facts_from_condition(parse_expr("x > 0 && y > 0")) == []

    def test_nonlinear_comparison_ignored(self):
        assert facts_from_condition(parse_expr("x * x > 4")) == []


class TestAbstractInterpreter:
    def test_assume_is_recorded(self):
        program = B.program(B.proc("main", ["x"],
            B.assume("x >= 5"),
            B.tick(1)))
        interp = AbstractInterpreter(program)
        interp.analyze_procedure("main")
        tick = [n for n in program.iter_nodes() if isinstance(n, ast.Tick)][0]
        assert interp.context_before(tick).entails(lin({"x": 1}, -5))

    def test_assignment_transfer(self):
        program = B.program(B.proc("main", [],
            B.assign("x", "3"),
            B.assign("x", "x + 2"),
            B.tick(1)))
        interp = AbstractInterpreter(program)
        interp.analyze_procedure("main")
        tick = [n for n in program.iter_nodes() if isinstance(n, ast.Tick)][0]
        ctx = interp.context_before(tick)
        assert ctx.entails(lin({"x": 1}, -5))
        assert ctx.entails(lin({"x": -1}, 5))

    def test_branch_join_keeps_common_facts(self):
        program = B.program(B.proc("main", ["x"],
            B.assume("x >= 0"),
            B.if_("x > 10", B.assign("x", "x - 1"), B.skip()),
            B.tick(1)))
        interp = AbstractInterpreter(program)
        interp.analyze_procedure("main")
        tick = [n for n in program.iter_nodes() if isinstance(n, ast.Tick)][0]
        assert interp.context_before(tick).entails(lin({"x": 1}))

    def test_loop_invariant_keeps_unmodified_facts(self):
        program = B.program(B.proc("main", ["smin", "s"],
            B.assume("smin >= 0"),
            B.while_("s > smin",
                B.prob("1/4", B.assign("s", "s + 1"), B.assign("s", "s - 1")),
                B.tick(1))))
        interp = AbstractInterpreter(program)
        interp.analyze_procedure("main")
        loop = [n for n in program.iter_nodes() if isinstance(n, ast.While)][0]
        assert interp.context_before(loop).entails(lin({"smin": 1}))

    def test_loop_body_context_includes_guard(self):
        program = B.program(B.proc("main", ["x", "n"],
            B.while_("x < n", B.assign("x", "x + 1"), B.tick(1))))
        interp = AbstractInterpreter(program)
        interp.analyze_procedure("main")
        assign = [n for n in program.iter_nodes() if isinstance(n, ast.Assign)][0]
        assert interp.context_before(assign).entails(lin({"n": 1, "x": -1}, -1))

    def test_sampling_adds_interval_bounds(self):
        program = B.program(B.proc("main", [],
            B.sample("k", Uniform(2, 5)),
            B.tick(1)))
        interp = AbstractInterpreter(program)
        interp.analyze_procedure("main")
        tick = [n for n in program.iter_nodes() if isinstance(n, ast.Tick)][0]
        ctx = interp.context_before(tick)
        assert ctx.entails(lin({"k": 1}, -2))
        assert ctx.entails(lin({"k": -1}, 5))

    def test_call_havocs_modified_variables(self):
        program = B.program(
            B.proc("main", ["x"],
                B.assume("x >= 3"),
                B.assign("y", "7"),
                B.call("clobber"),
                B.tick(1)),
            B.proc("clobber", [], B.assign("y", "0")))
        interp = AbstractInterpreter(program)
        interp.analyze_procedure("main")
        tick = [n for n in program.main_procedure.body.iter_nodes()
                if isinstance(n, ast.Tick)][0]
        ctx = interp.context_before(tick)
        assert ctx.entails(lin({"x": 1}, -3))
        assert not ctx.entails(lin({"y": 1}, -7))

    def test_abort_makes_rest_unreachable(self):
        program = B.program(B.proc("main", [], B.abort(), B.tick(1)))
        interp = AbstractInterpreter(program)
        interp.analyze_procedure("main")
        tick = [n for n in program.iter_nodes() if isinstance(n, ast.Tick)][0]
        assert interp.context_before(tick).is_unreachable

    def test_fixpoint_terminates_on_growing_variable(self):
        # x grows forever; the widening must terminate anyway.
        program = B.program(B.proc("main", ["x"],
            B.while_("x > 0", B.assign("x", "x + 1"), B.tick(1))))
        interp = AbstractInterpreter(program)
        interp.analyze_procedure("main")   # must not loop forever
        loop = [n for n in program.iter_nodes() if isinstance(n, ast.While)][0]
        assert interp.context_before(loop) is not None
