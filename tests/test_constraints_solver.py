"""Tests for the LP constraint system and the iterative solver."""

from fractions import Fraction

import pytest

from repro.core.constraints import AffExpr, ConstraintSystem
from repro.core.solver import IterativeMinimizer, solve_lp


class TestAffExpr:
    def test_constant(self):
        assert AffExpr.constant(3).const == 3
        assert AffExpr.constant(3).is_constant()

    def test_addition_and_scaling(self):
        cs = ConstraintSystem()
        a = cs.new_var("a")
        b = cs.new_var("b")
        expr = a * 2 + b - 1
        values = {var: Fraction(1) for var in cs.variables}
        assert expr.evaluate(values) == 2

    def test_zero_coefficients_dropped(self):
        cs = ConstraintSystem()
        a = cs.new_var("a")
        expr = a - a
        assert expr.is_zero()

    def test_subtraction_from_number(self):
        cs = ConstraintSystem()
        a = cs.new_var("a")
        expr = 5 - a
        assert expr.const == 5

    def test_str(self):
        cs = ConstraintSystem()
        a = cs.new_var("pretty")
        assert "pretty" in str(a + 1)


class TestConstraintSystem:
    def test_variable_creation(self):
        cs = ConstraintSystem()
        cs.new_var("x")
        cs.new_vars(3, "u", nonneg=True)
        assert cs.num_variables == 4
        assert sum(1 for v in cs.variables if v.nonneg) == 3

    def test_trivial_equality_dropped(self):
        cs = ConstraintSystem()
        cs.add_eq(AffExpr.constant(0), 0)
        assert cs.num_constraints == 0

    def test_contradictory_equality_recorded(self):
        cs = ConstraintSystem()
        cs.add_eq(AffExpr.constant(1), 0)
        assert cs.num_constraints == 1

    def test_add_le(self):
        cs = ConstraintSystem()
        a = cs.new_var("a")
        cs.add_le(a, 5)
        assert cs.num_constraints == 1

    def test_describe(self):
        assert "0 variables" in ConstraintSystem().describe()


class TestSolveLP:
    def test_simple_minimisation(self):
        cs = ConstraintSystem()
        x = cs.new_var("x", nonneg=True)
        cs.add_ge(x, 3)
        values = solve_lp(cs, x)
        assert values is not None
        assert values[0] == pytest.approx(3.0)

    def test_equality_constraint(self):
        cs = ConstraintSystem()
        x = cs.new_var("x", nonneg=True)
        y = cs.new_var("y", nonneg=True)
        cs.add_eq(x + y, 10)
        values = solve_lp(cs, x)
        assert values[0] == pytest.approx(0.0)
        assert values[1] == pytest.approx(10.0)

    def test_infeasible_returns_none(self):
        cs = ConstraintSystem()
        x = cs.new_var("x", nonneg=True)
        cs.add_ge(0 - x, 1)     # -x >= 1 with x >= 0
        assert solve_lp(cs, x) is None

    def test_empty_system(self):
        assert solve_lp(ConstraintSystem(), None) is not None


class TestIterativeMinimizer:
    def test_two_stage_minimisation(self):
        """First minimise x, fix it, then minimise y under the fixed x."""
        cs = ConstraintSystem()
        x = cs.new_var("x", nonneg=True)
        y = cs.new_var("y", nonneg=True)
        cs.add_ge(x + y, 10)      # x + y >= 10
        cs.add_ge(x, 2)
        solution = IterativeMinimizer(cs).solve([x, y])
        assert solution is not None
        assert solution.evaluate(x) == pytest.approx(2, abs=1e-4)
        assert solution.evaluate(y) == pytest.approx(8, abs=1e-3)
        assert solution.iterations == 2

    def test_solution_snaps_to_rationals(self):
        cs = ConstraintSystem()
        x = cs.new_var("x", nonneg=True)
        cs.add_ge(x * 3, 2)       # x >= 2/3
        solution = IterativeMinimizer(cs).solve([x])
        assert solution.evaluate(x) == Fraction(2, 3)

    def test_infeasible(self):
        cs = ConstraintSystem()
        x = cs.new_var("x", nonneg=True)
        cs.add_eq(x, -1)
        assert IterativeMinimizer(cs).solve([x]) is None

    def test_nonneg_clamping(self):
        cs = ConstraintSystem()
        x = cs.new_var("x", nonneg=True)
        cs.add_ge(x, 0)
        solution = IterativeMinimizer(cs).solve([x])
        assert solution.evaluate(x) >= 0
