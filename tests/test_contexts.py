"""Unit tests for logical contexts (repro.logic.contexts)."""

from fractions import Fraction

from repro.logic.contexts import Context
from repro.utils.linear import LinExpr


def lin(coeffs=None, const=0):
    return LinExpr(coeffs or {}, const)


X = lin({"x": 1})
Y = lin({"y": 1})


class TestConstruction:
    def test_top_has_no_facts(self):
        assert len(Context.top()) == 0
        assert not Context.top().is_unreachable

    def test_trivially_true_facts_dropped(self):
        assert len(Context([lin({}, 3)])) == 0

    def test_trivially_false_fact_means_unreachable(self):
        assert Context([lin({}, -1)]).is_unreachable

    def test_duplicate_facts_merged(self):
        assert len(Context([X, X])) == 1


class TestEntailment:
    def test_entails_own_fact(self):
        ctx = Context([X - 1])
        assert ctx.entails(X - 1)
        assert ctx.entails(X)

    def test_does_not_entail_unrelated(self):
        assert not Context([X]).entails(Y)

    def test_unreachable_entails_everything(self):
        assert Context.unreachable_context().entails(lin({}, -100))

    def test_entails_context(self):
        strong = Context([X - 2, Y])
        weak = Context([X])
        assert strong.entails_context(weak)
        assert not weak.entails_context(strong)

    def test_greatest_lower_bound(self):
        ctx = Context([X - Y, Y - 3])
        assert ctx.greatest_lower_bound(X) == 3
        assert ctx.greatest_lower_bound(Y) == 3
        assert ctx.greatest_lower_bound(X - Y) == 0

    def test_greatest_lower_bound_unbounded(self):
        assert Context([X]).greatest_lower_bound(Y) is None

    def test_satisfiability(self):
        assert Context([X, 10 - X]).is_satisfiable()
        assert not Context([X - 1, -X]).is_satisfiable()


class TestTransfer:
    def test_havoc_removes_facts(self):
        ctx = Context([X - 1, Y - 2]).havoc("x")
        assert ctx.entails(Y - 2)
        assert not ctx.entails(X - 1)

    def test_assign_constant(self):
        ctx = Context.top().assign("x", lin({}, 5))
        assert ctx.entails(X - 5)
        assert ctx.entails(5 - X)

    def test_assign_increment_shifts_facts(self):
        ctx = Context([X - 3]).assign("x", X + 1)
        assert ctx.entails(X - 4)

    def test_assign_from_other_variable(self):
        ctx = Context([Y - 7]).assign("x", Y)
        assert ctx.entails(X - 7)

    def test_assign_overwrites_old_information(self):
        ctx = Context([X - 100]).assign("x", lin({}, 1))
        assert ctx.entails(1 - X)

    def test_assign_interval_sampling(self):
        # x := x + unif(0, 10) starting from x >= 3.
        ctx = Context([X - 3]).assign_interval("x", X, 0, 10)
        assert ctx.entails(X - 3)          # lower bound preserved
        assert not ctx.entails(X - 14)     # but not x >= 14

    def test_rename(self):
        ctx = Context([X - 1]).rename({"x": "z"})
        assert ctx.entails(lin({"z": 1}) - 1)


class TestLattice:
    def test_join_keeps_common_facts(self):
        a = Context([X - 1, Y - 5])
        b = Context([X - 3])
        joined = a.join(b)
        assert joined.entails(X - 1)
        assert not joined.entails(Y - 5)

    def test_join_with_unreachable(self):
        a = Context([X - 1])
        assert a.join(Context.unreachable_context()) == a
        assert Context.unreachable_context().join(a) == a

    def test_widen_drops_unstable_facts(self):
        old = Context([X - 5, Y])
        new = Context([X - 4, Y])
        widened = old.widen(new)
        assert widened.entails(Y)
        assert not widened.entails(X - 5)

    def test_satisfied_by(self):
        ctx = Context([X - 1, Y - X])
        assert ctx.satisfied_by({"x": 2, "y": 3})
        assert not ctx.satisfied_by({"x": 0, "y": 3})
        assert not Context.unreachable_context().satisfied_by({"x": 0, "y": 0})
