"""Unit tests for the discrete distributions."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.lang.distributions import (
    Bernoulli,
    Binomial,
    Finite,
    HyperGeometric,
    Uniform,
    make_distribution,
)

ALL_EXAMPLES = [
    Bernoulli(Fraction(1, 3)),
    Uniform(0, 10),
    Uniform(-3, 3),
    Binomial(5, Fraction(1, 2)),
    Binomial(3, Fraction(2, 3)),
    HyperGeometric(20, 4, 5),
    Finite({0: Fraction(1, 4), 2: Fraction(3, 4)}),
]


@pytest.mark.parametrize("dist", ALL_EXAMPLES, ids=lambda d: str(d))
def test_probabilities_sum_to_one(dist):
    assert dist.probabilities_sum() == 1


@pytest.mark.parametrize("dist", ALL_EXAMPLES, ids=lambda d: str(d))
def test_support_is_sorted_and_positive(dist):
    support = dist.support()
    values = [value for value, _ in support]
    assert values == sorted(values)
    assert all(prob > 0 for _, prob in support)


class TestMeans:
    def test_bernoulli_mean(self):
        assert Bernoulli(Fraction(1, 3)).mean() == Fraction(1, 3)

    def test_uniform_mean(self):
        assert Uniform(0, 10).mean() == 5

    def test_binomial_mean(self):
        assert Binomial(3, Fraction(2, 3)).mean() == 2

    def test_hypergeometric_mean(self):
        assert HyperGeometric(20, 4, 5).mean() == 1

    def test_uniform_variance(self):
        # Var of discrete uniform over 0..n is ((n+1)^2 - 1) / 12.
        assert Uniform(0, 10).variance() == Fraction(121 - 1, 12)

    def test_bernoulli_degenerate(self):
        assert Bernoulli(0).support() == [(0, Fraction(1))]
        assert Bernoulli(1).support() == [(1, Fraction(1))]


class TestValidation:
    def test_bernoulli_range(self):
        with pytest.raises(ValueError):
            Bernoulli(2)

    def test_uniform_order(self):
        with pytest.raises(ValueError):
            Uniform(5, 2)

    def test_binomial_negative(self):
        with pytest.raises(ValueError):
            Binomial(-1, Fraction(1, 2))

    def test_hypergeometric_bounds(self):
        with pytest.raises(ValueError):
            HyperGeometric(10, 12, 3)

    def test_finite_sum(self):
        with pytest.raises(ValueError):
            Finite({0: Fraction(1, 2)})

    def test_finite_empty(self):
        with pytest.raises(ValueError):
            Finite({})


class TestSampling:
    @pytest.mark.parametrize("dist", ALL_EXAMPLES, ids=lambda d: str(d))
    def test_samples_in_support(self, dist):
        rng = np.random.default_rng(0)
        support = {value for value, _ in dist.support()}
        for _ in range(200):
            assert dist.sample(rng) in support

    def test_sample_mean_close_to_exact_mean(self):
        rng = np.random.default_rng(1)
        dist = Uniform(0, 10)
        draws = [dist.sample(rng) for _ in range(4000)]
        assert abs(sum(draws) / len(draws) - 5) < 0.3


class TestRegistry:
    def test_make_uniform(self):
        dist = make_distribution("unif", [0, 3])
        assert isinstance(dist, Uniform)
        assert dist.max_value() == 3

    def test_make_bernoulli(self):
        assert isinstance(make_distribution("ber", [Fraction(1, 2)]), Bernoulli)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_distribution("poisson", [3])


@settings(max_examples=30)
@given(st.integers(0, 8), st.fractions(min_value=0, max_value=1, max_denominator=6))
def test_binomial_mean_formula(n, p):
    assert Binomial(n, p).mean() == n * p


@settings(max_examples=30)
@given(st.integers(-20, 20), st.integers(0, 15))
def test_uniform_support_size(lower, width):
    dist = Uniform(lower, lower + width)
    assert len(dist.support()) == width + 1
    assert dist.min_value() == lower
    assert dist.max_value() == lower + width
