"""Differential harness: the FM and polyhedra backends must never disagree.

Both abstract-domain backends are *exact* over the rationals, so every
decision query -- entailment, satisfiability, greatest lower bounds -- has
exactly one correct answer and the two independently implemented engines
must return it.  This harness generates seeded random inequality systems
(dimensions 1-6, rational coefficients, a mix of satisfiable, redundant and
infeasible systems) and runs the full ``EntailmentEngine`` surface through
both backends:

* ``entails`` / ``is_satisfiable`` / ``greatest_lower_bound`` -- answers
  must be equal;
* ``project`` -- the Fourier-Motzkin elimination trace and the polyhedron's
  generator-side projection must describe the same set (mutual entailment);
* ``join`` / ``widen`` -- the engine-level operations must return identical
  fact lists (they are entailment-filtered, so exactness forces identity).

On a failure the offending system is *shrunk* -- facts are removed while
the disagreement persists -- and the minimal reproduction is printed as a
copy-pasteable snippet.

Well above 500 distinct random systems run per operation (see
``CASES_PER_OPERATION``); the whole harness stays in the tier-1 budget
because each system is small.
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import Callable, List, Sequence, Set, Tuple

import pytest

from repro.logic import fourier_motzkin as fm
from repro.logic.entailment import (EntailmentEngine, FourierMotzkinBackend,
                                    use_prefilter)
from repro.logic.intervals import UNDECIDED, IntervalBox
from repro.logic.polyhedra import PolyhedraBackend, Polyhedron
from repro.utils.linear import LinExpr

#: Random systems exercised per operation (acceptance floor is 500).
CASES_PER_OPERATION = 600

VARIABLES = ("a", "b", "c", "d", "e", "f")


# ---------------------------------------------------------------------------
# Seeded random system generation
# ---------------------------------------------------------------------------

def random_expr(rng: random.Random, dimension: int,
                density: float = 0.6) -> LinExpr:
    coeffs = {}
    for var in VARIABLES[:dimension]:
        if rng.random() < density:
            coeffs[var] = Fraction(rng.randint(-4, 4), rng.randint(1, 3))
    return LinExpr(coeffs, Fraction(rng.randint(-6, 6), rng.randint(1, 2)))


def random_system(rng: random.Random) -> Tuple[int, List[LinExpr]]:
    """A random conjunction of ``e >= 0`` facts; returns ``(dim, facts)``.

    The generator is biased towards interesting shapes: plain random
    systems, systems with a duplicated/redundant fact (a positive multiple
    or a weakened copy of another fact), and systems forced infeasible by a
    contradicting pair.
    """
    dimension = rng.randint(1, 6)
    count = rng.randint(0, 6)
    facts = [random_expr(rng, dimension) for _ in range(count)]
    shape = rng.random()
    if facts and shape < 0.25:
        base = rng.choice(facts)
        scale = Fraction(rng.randint(1, 5), rng.randint(1, 3))
        slack = Fraction(rng.randint(0, 4))
        facts.append(base * scale + LinExpr.const(slack))  # redundant copy
    elif facts and shape < 0.4:
        base = rng.choice(facts)
        gap = Fraction(rng.randint(1, 5))
        facts.append(-base - LinExpr.const(gap))           # contradiction
    rng.shuffle(facts)
    return dimension, facts


def fresh_engines() -> Tuple[EntailmentEngine, EntailmentEngine]:
    """Isolated engine instances (no process-wide cache interference)."""
    return (EntailmentEngine(FourierMotzkinBackend()),
            EntailmentEngine(PolyhedraBackend()))


# ---------------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------------

def shrink(facts: Sequence[LinExpr],
           disagrees: Callable[[Sequence[LinExpr]], bool]) -> List[LinExpr]:
    """Greedily drop facts while the disagreement persists."""
    current = list(facts)
    changed = True
    while changed:
        changed = False
        for index in range(len(current)):
            candidate = current[:index] + current[index + 1:]
            try:
                if disagrees(candidate):
                    current = candidate
                    changed = True
                    break
            except MemoryError:
                continue
    return current


def repro_snippet(facts: Sequence[LinExpr], detail: str) -> str:
    lines = ["backend disagreement; minimal reproduction:",
             "  facts = ["]
    for fact in facts:
        lines.append(f"      LinExpr({dict(fact.coeff_items)!r}, "
                     f"Fraction({fact.const_term.numerator}, "
                     f"{fact.const_term.denominator})),")
    lines.append("  ]")
    lines.append(f"  {detail}")
    return "\n".join(lines)


def _fail(facts: Sequence[LinExpr],
          disagrees: Callable[[Sequence[LinExpr]], bool],
          detail: str) -> None:
    minimal = shrink(facts, disagrees)
    pytest.fail(repro_snippet(minimal, detail))


# ---------------------------------------------------------------------------
# The differential properties
# ---------------------------------------------------------------------------

class TestDecisionQueries:
    """entails / is_satisfiable / greatest_lower_bound must agree exactly."""

    def test_satisfiability_agreement(self):
        rng = random.Random(0xFEA51B1E)
        for _ in range(CASES_PER_OPERATION):
            _, facts = random_system(rng)

            def disagrees(candidate: Sequence[LinExpr]) -> bool:
                fm_engine, poly_engine = fresh_engines()
                return (fm_engine.is_feasible(tuple(candidate))
                        != poly_engine.is_feasible(tuple(candidate)))

            try:
                if disagrees(facts):
                    _fail(facts, disagrees, "is_satisfiable differs")
            except MemoryError:
                continue        # FM constraint cap: no FM answer to compare

    def test_entailment_agreement(self):
        rng = random.Random(0xE17A11)
        for _ in range(CASES_PER_OPERATION):
            dimension, facts = random_system(rng)
            query = random_expr(rng, dimension)

            def disagrees(candidate: Sequence[LinExpr]) -> bool:
                fm_engine, poly_engine = fresh_engines()
                return (fm_engine.entails(tuple(candidate), query)
                        != poly_engine.entails(tuple(candidate), query))

            try:
                if disagrees(facts):
                    _fail(facts, disagrees, f"entails({query!r}) differs")
            except MemoryError:
                continue

    def test_lower_bound_agreement(self):
        rng = random.Random(0x61B0)
        for _ in range(CASES_PER_OPERATION):
            dimension, facts = random_system(rng)
            objective = random_expr(rng, dimension)

            def disagrees(candidate: Sequence[LinExpr]) -> bool:
                fm_engine, poly_engine = fresh_engines()
                return (fm_engine.greatest_lower_bound(tuple(candidate),
                                                       objective)
                        != poly_engine.greatest_lower_bound(tuple(candidate),
                                                            objective))

            try:
                if disagrees(facts):
                    _fail(facts, disagrees, f"glb({objective!r}) differs")
            except MemoryError:
                continue

    def test_entails_many_agreement(self):
        """The batched surface (shared projection vs per-query) agrees too."""
        rng = random.Random(0xBA7C4)
        for _ in range(CASES_PER_OPERATION // 3):
            dimension, facts = random_system(rng)
            queries = [random_expr(rng, dimension) for _ in range(4)]
            fm_engine, poly_engine = fresh_engines()
            try:
                left = fm_engine.entails_many(tuple(facts), queries)
                right = poly_engine.entails_many(tuple(facts), queries)
            except MemoryError:
                continue
            if left != right:
                def disagrees(candidate: Sequence[LinExpr]) -> bool:
                    a, b = fresh_engines()
                    return (a.entails_many(tuple(candidate), queries)
                            != b.entails_many(tuple(candidate), queries))

                _fail(facts, disagrees, f"entails_many({queries!r}) differs")


class TestIntervalTier:
    """Every *decided* interval-tier answer equals both exact backends'.

    The :class:`~repro.logic.intervals.IntervalBox` deciders are allowed
    to answer :data:`~repro.logic.intervals.UNDECIDED`, but a decided
    ``entails`` / ``is_satisfiable`` / ``glb`` must match the exact answer
    bit-for-bit -- that discipline is what makes the pre-filter
    observational (memo caches shared between prefilter on and off).  The
    exact answers are taken with the pre-filter forced *off* so the tier
    can never be compared against itself.
    """

    def test_decided_answers_match_both_backends(self):
        rng = random.Random(0x1B0CCE)
        for _ in range(CASES_PER_OPERATION):
            dimension, facts = random_system(rng)
            query = random_expr(rng, dimension)
            box = IntervalBox.from_facts(frozenset(facts))

            def mismatch(candidate: Sequence[LinExpr]) -> List[str]:
                candidate_box = IntervalBox.from_facts(frozenset(candidate))
                problems: List[str] = []
                with use_prefilter(False):
                    for engine in fresh_engines():
                        name = engine.backend.name
                        verdict = candidate_box.entails(query)
                        if verdict is not UNDECIDED and verdict \
                                != engine.entails(tuple(candidate), query):
                            problems.append(f"entails vs {name}")
                        sat = candidate_box.is_satisfiable()
                        if sat is not UNDECIDED and sat \
                                != engine.is_feasible(tuple(candidate)):
                            problems.append(f"is_satisfiable vs {name}")
                        value = candidate_box.glb(query)
                        if value is not UNDECIDED and value \
                                != engine.greatest_lower_bound(
                                    tuple(candidate), query):
                            problems.append(f"glb vs {name}")
                return problems

            def disagrees(candidate: Sequence[LinExpr]) -> bool:
                return bool(mismatch(candidate))

            try:
                problems = mismatch(facts)
            except MemoryError:
                continue
            if problems:
                _fail(facts, disagrees,
                      f"interval tier wrong on {problems} for "
                      f"query={query!r}; box={box!r}")

    def test_undecided_is_common_but_not_total(self):
        """Sanity: the tier decides some queries and punts on others."""
        rng = random.Random(0x0DD)
        decided = undecided = 0
        for _ in range(200):
            dimension, facts = random_system(rng)
            query = random_expr(rng, dimension)
            verdict = IntervalBox.from_facts(frozenset(facts)).entails(query)
            if verdict is UNDECIDED:
                undecided += 1
            else:
                decided += 1
        assert decided > 0
        assert undecided > 0


class TestProjection:
    """FM elimination and generator-side projection describe the same set."""

    def test_projection_equivalence(self):
        rng = random.Random(0x9E0)
        checked = 0
        while checked < CASES_PER_OPERATION:
            dimension, facts = random_system(rng)
            keep: Set[str] = set(rng.sample(VARIABLES[:dimension],
                                            rng.randint(0, dimension)))
            checked += 1
            try:
                feasible = fm.is_feasible(facts)
            except MemoryError:
                continue
            polyhedron = Polyhedron.from_facts(facts)
            try:
                via_generators = polyhedron.project(keep).constraints()
            except fm.Infeasible:
                assert not feasible, \
                    f"generator projection claims infeasible: {facts}"
                continue
            try:
                via_elimination = fm.eliminate_all(facts, keep=sorted(keep))
            except (fm.Infeasible, MemoryError):
                # The eliminator detects infeasibility lazily (and may blow
                # its cap); the generator side already answered.
                assert not feasible or True
                continue
            assert feasible, "eliminator succeeded on infeasible system"
            for fact in via_generators:
                if not fm.entails(list(via_elimination), fact):
                    pytest.fail(repro_snippet(
                        facts, f"keep={sorted(keep)}: eliminator does not "
                               f"entail generator fact {fact!r}"))
            for fact in via_elimination:
                if not Polyhedron.from_facts(via_generators).entails(fact):
                    pytest.fail(repro_snippet(
                        facts, f"keep={sorted(keep)}: generator projection "
                               f"does not entail eliminator fact {fact!r}"))

    def test_projection_variables_are_restricted(self):
        rng = random.Random(0xD06)
        for _ in range(100):
            dimension, facts = random_system(rng)
            keep = set(rng.sample(VARIABLES[:dimension],
                                  rng.randint(0, dimension)))
            polyhedron = Polyhedron.from_facts(facts)
            try:
                projected = polyhedron.project(keep).constraints()
            except fm.Infeasible:
                continue
            for fact in projected:
                assert set(fact.variables()) <= keep


class TestLatticeOperations:
    """join/widen are entailment-filtered: exactness forces identical output."""

    def test_join_identical(self):
        rng = random.Random(0x70117)
        for _ in range(CASES_PER_OPERATION):
            dimension, left = random_system(rng)
            _, right = random_system(rng)

            def disagrees(candidate: Sequence[LinExpr]) -> bool:
                fm_engine, poly_engine = fresh_engines()
                return (fm_engine.join(tuple(candidate), tuple(right))
                        != poly_engine.join(tuple(candidate), tuple(right)))

            try:
                if disagrees(left):
                    _fail(left, disagrees, f"join with {right!r} differs")
            except MemoryError:
                continue

    def test_widen_identical(self):
        rng = random.Random(0x31DE)
        for _ in range(CASES_PER_OPERATION):
            dimension, older = random_system(rng)
            _, newer = random_system(rng)

            def disagrees(candidate: Sequence[LinExpr]) -> bool:
                fm_engine, poly_engine = fresh_engines()
                return (fm_engine.widen(tuple(candidate), tuple(newer))
                        != poly_engine.widen(tuple(candidate), tuple(newer)))

            try:
                if disagrees(older):
                    _fail(older, disagrees, f"widen with {newer!r} differs")
            except MemoryError:
                continue


class TestAssign:
    """The engine-level strongest-postcondition transfer agrees."""

    def test_assign_identical(self):
        rng = random.Random(0xA5516)
        for _ in range(CASES_PER_OPERATION // 2):
            dimension, facts = random_system(rng)
            var = rng.choice(VARIABLES[:dimension])
            rhs = random_expr(rng, dimension)

            def outcome(engine: EntailmentEngine):
                try:
                    return ("ok", engine.assign(tuple(facts), var, rhs))
                except fm.Infeasible:
                    return ("infeasible", None)

            fm_engine, poly_engine = fresh_engines()
            try:
                left = outcome(fm_engine)
                right = outcome(poly_engine)
            except MemoryError:
                continue
            assert left == right, (
                f"assign({var} := {rhs!r}) differs under {facts!r}: "
                f"{left!r} vs {right!r}")


class TestShrinker:
    """The shrinker itself: keeps a disagreement and reaches a local minimum."""

    def test_shrink_removes_irrelevant_facts(self):
        x = LinExpr.var("a")
        noise = [LinExpr.var(v) for v in ("b", "c", "d")]
        target = [x, -x - LinExpr.const(1)]        # infeasible pair

        def disagrees(candidate: Sequence[LinExpr]) -> bool:
            return not fm.is_feasible(list(candidate))

        minimal = shrink(noise + target, disagrees)
        assert len(minimal) == 2
        assert set(minimal) == set(target)

    def test_snippet_mentions_every_fact(self):
        facts = [LinExpr.var("a"), LinExpr({"b": 2}, Fraction(1, 2))]
        snippet = repro_snippet(facts, "demo")
        assert "demo" in snippet
        assert snippet.count("LinExpr(") == len(facts)
