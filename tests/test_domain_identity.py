"""Registry-wide reproducibility: both domains produce identical results.

The polyhedra backend answers the same exact queries as the Fourier-Motzkin
backend and shares the representation-producing projection, so a full
analysis must be *byte-identical* across ``--domain fm`` and ``--domain
polyhedra``: the same bound string, the same serialised certificate (every
annotated program point, every weakening context, every rewrite
combination).  This is the strongest cheap guarantee that switching the
backend can never change an analysis result -- any divergence is a
soundness bug in one of the engines.

The AST node counter is process-global, so each analysis rebuilds its
program after resetting the counter; ids are then deterministic per build
and certificates compare byte-for-byte.
"""

from __future__ import annotations

import itertools
import json

import pytest

from repro.bench.registry import all_benchmarks
from repro.core.analyzer import analyze_program
from repro.lang import ast
from repro.service.jobs import bound_payload, certificate_payload


def _analyze(bench, domain: str, **options):
    """Fresh build (deterministic node ids) + analysis under ``domain``."""
    ast._NODE_COUNTER = itertools.count(1)
    program = bench.build()
    return analyze_program(program, **{**bench.analyzer_options,
                                       "domain": domain, **options})


def _serialised(result):
    """The full externally visible image of a result, as canonical JSON."""
    return json.dumps({
        "success": result.success,
        "degree": result.degree,
        "bound": bound_payload(result.bound) if result.bound else None,
        "pretty": result.bound.pretty() if result.bound else None,
        "lp_variables": result.lp_variables,
        "lp_constraints": result.lp_constraints,
        "certificate": (certificate_payload(result.certificate)
                        if result.certificate else None),
    }, sort_keys=True)


@pytest.mark.parametrize("bench", all_benchmarks(),
                         ids=lambda bench: bench.name)
def test_registry_bounds_and_certificates_identical(bench):
    under_fm = _analyze(bench, "fm")
    under_polyhedra = _analyze(bench, "polyhedra")
    assert under_fm.success and under_polyhedra.success, (
        f"{bench.name}: fm={under_fm.message!r} "
        f"polyhedra={under_polyhedra.message!r}")
    left, right = _serialised(under_fm), _serialised(under_polyhedra)
    assert left == right, (
        f"{bench.name}: analysis diverges between domains\n"
        f"fm:        {left[:400]}\n"
        f"polyhedra: {right[:400]}")


#: Every third benchmark: enough variety (linear, polynomial, recursive)
#: to exercise all tier paths without doubling the tier-1 wall; the full
#: registry runs through ``perfsmoke --prefilter-compare``.
_PREFILTER_SAMPLE = all_benchmarks()[::3]


@pytest.mark.parametrize("domain", ["fm", "polyhedra"])
@pytest.mark.parametrize("bench", _PREFILTER_SAMPLE,
                         ids=lambda bench: bench.name)
def test_prefilter_on_off_identical(bench, domain):
    """The interval tier is observational: results match bit-for-bit.

    The tier only answers when it provably matches the exact backend, so
    an analysis with the pre-filter enabled must serialise byte-identically
    to one without it -- bounds, LP shape and the full certificate.
    """
    with_tier = _analyze(bench, domain, prefilter=True)
    without_tier = _analyze(bench, domain, prefilter=False)
    left, right = _serialised(with_tier), _serialised(without_tier)
    assert left == right, (
        f"{bench.name} [{domain}]: the pre-filter changed the analysis\n"
        f"on:  {left[:400]}\n"
        f"off: {right[:400]}")
