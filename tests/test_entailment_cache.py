"""Tests for the cached entailment engine (:mod:`repro.logic.entailment`).

The engine must be a *transparent* cache: for every query the answer has to
equal what a cold call into :mod:`repro.logic.fourier_motzkin` produces,
across memo hits, syntactic fast paths and batched projection.  The tests
therefore cross-check randomized contexts against the uncached ground truth,
and pin down the edge cases (``Unbounded``, ``Infeasible``, the
constraint-cap ``MemoryError`` fallback in ``Context.assign``).
"""

import random
from fractions import Fraction

import pytest

from repro.logic import fourier_motzkin as fm
from repro.logic.contexts import Context
from repro.logic.entailment import EntailmentEngine, get_engine
from repro.utils.linear import LinExpr


def lin(coeffs=None, const=0):
    return LinExpr(coeffs or {}, const)


X = lin({"x": 1})
Y = lin({"y": 1})
Z = lin({"z": 1})


def random_expr(rng, variables, max_coeff=3, max_const=5):
    coeffs = {var: rng.randint(-max_coeff, max_coeff) for var in variables
              if rng.random() < 0.7}
    return LinExpr(coeffs, rng.randint(-max_const, max_const))


class TestCachedEqualsCold:
    """Property-style: cached answers equal cold Fourier-Motzkin answers."""

    def test_randomized_contexts(self):
        rng = random.Random(20260727)
        for trial in range(60):
            variables = ["x", "y", "z"][:rng.randint(1, 3)]
            facts = [random_expr(rng, variables)
                     for _ in range(rng.randint(0, 4))]
            queries = [random_expr(rng, variables) for _ in range(4)]
            engine = EntailmentEngine()
            for query in queries:
                expected = fm.entails(facts, query)
                assert engine.entails(facts, query) is expected, \
                    f"trial {trial}: cold mismatch for {facts} |= {query}"
                # Second ask must come from the memo and agree.
                hits_before = engine.stats.memo_hits
                assert engine.entails(facts, query) is expected
                assert engine.stats.memo_hits == hits_before + 1
            # Batched answers agree with the individual ones.
            fresh = EntailmentEngine()
            assert fresh.entails_many(facts, queries) \
                == [fm.entails(facts, q) for q in queries]

    def test_randomized_lower_bounds(self):
        rng = random.Random(4711)
        for trial in range(40):
            variables = ["x", "y"][:rng.randint(1, 2)]
            facts = [random_expr(rng, variables)
                     for _ in range(rng.randint(0, 3))]
            expression = random_expr(rng, variables)
            expected = fm.greatest_lower_bound(facts, expression)
            engine = EntailmentEngine()
            assert engine.greatest_lower_bound(facts, expression) == expected
            assert engine.greatest_lower_bound(facts, expression) == expected

    def test_randomized_feasibility(self):
        rng = random.Random(99)
        for _ in range(40):
            facts = [random_expr(rng, ["x", "y"]) for _ in range(rng.randint(0, 4))]
            engine = EntailmentEngine()
            assert engine.is_feasible(facts) is fm.is_feasible(facts)

    def test_clear_preserves_answers(self):
        engine = EntailmentEngine()
        facts = [X - 1, 10 - X]
        assert engine.entails(facts, X) is True
        engine.clear()
        assert engine.entails(facts, X) is True


class TestFastPaths:
    def test_literal_fact(self):
        engine = EntailmentEngine()
        assert engine.entails([X - 1], X - 1) is True
        assert engine.stats.fast_hits == 1
        assert engine.stats.eliminations == 0

    def test_scaled_fact_with_slack(self):
        engine = EntailmentEngine()
        # 3x - 3 >= 0 is (x - 1) scaled; 2x - 1 >= 0 is x - 1 scaled + slack.
        assert engine.entails([X - 1], (X - 1) * 3) is True
        assert engine.entails([X - 1], X * 2 - 1) is True
        assert engine.stats.eliminations == 0

    def test_two_fact_combination(self):
        engine = EntailmentEngine()
        # x >= 1 and y >= 2 entail 2x + 3y >= 8 (a=2, b=3, slack 0).
        assert engine.entails([X - 1, Y - 2],
                              X * 2 + Y * 3 - 8) is True
        assert engine.stats.eliminations == 0

    def test_trivial_constant(self):
        engine = EntailmentEngine()
        assert engine.entails([X], lin({}, 5)) is True
        assert engine.stats.eliminations == 0

    def test_no_variable_overlap_is_not_entailed(self):
        engine = EntailmentEngine()
        # A feasible context says nothing about z.
        assert engine.entails([X - 1], Z) is False

    def test_fast_paths_never_contradict_cold_answers(self):
        rng = random.Random(3141)
        for _ in range(50):
            facts = [random_expr(rng, ["x", "y"]) for _ in range(2)]
            scale = rng.randint(1, 4)
            slack = rng.randint(0, 3)
            query = facts[0] * scale + slack
            assert EntailmentEngine().entails(facts, query) \
                is fm.entails(facts, query)


class TestEdgeCases:
    def test_infeasible_context_entails_everything(self):
        engine = EntailmentEngine()
        facts = [X - 1, -X]          # x >= 1 and x <= 0
        assert engine.is_feasible(facts) is False
        assert engine.entails(facts, lin({}, -5)) is True
        assert engine.entails(facts, Y - 100) is True
        # glb convention: None for unsatisfiable contexts.
        assert engine.greatest_lower_bound(facts, X) is None

    def test_unbounded_minimisation(self):
        with pytest.raises(fm.Unbounded):
            fm.minimize(X, [])
        assert EntailmentEngine().greatest_lower_bound([], X) is None
        assert EntailmentEngine().greatest_lower_bound([10 - X], X) is None

    def test_constant_expression_lower_bound(self):
        engine = EntailmentEngine()
        assert engine.greatest_lower_bound([X], lin({}, 7)) == 7
        assert engine.greatest_lower_bound([X - 1, -X], lin({}, 7)) is None

    def test_projection_raises_infeasible_on_cache_hit(self):
        engine = EntailmentEngine()
        facts = (X - 1, -X)
        with pytest.raises(fm.Infeasible):
            engine.project(facts, frozenset())
        with pytest.raises(fm.Infeasible):
            engine.project(facts, frozenset())

    def test_memory_error_fallback_in_context_assign(self, monkeypatch):
        # Force the constraint cap to blow immediately: under the FM
        # backend the strongest-post projection must fall back to havoc
        # instead of crashing.
        from repro.logic import entailment
        monkeypatch.setattr(fm, "MAX_CONSTRAINTS", 0)
        context = Context([X - 1, 10 - X, Y - 2])
        with entailment.use_domain("fm"):
            result = context.assign("x", X + Y)
            havoced = context.havoc("x")
            assert set(result.facts) == set(havoced.facts)
            assert not result.is_unreachable

    def test_polyhedra_assign_immune_to_constraint_cap(self, monkeypatch):
        # The generator-side assign never runs Fourier-Motzkin, so the FM
        # constraint cap cannot degrade it: even with the cap at zero the
        # strongest post stays exact (no havoc fallback).
        from repro.logic import entailment
        original_cap = fm.MAX_CONSTRAINTS
        monkeypatch.setattr(fm, "MAX_CONSTRAINTS", 0)
        context = Context([X - 1, 10 - X, Y - 2])
        with entailment.use_domain("polyhedra"):
            exact = context.assign("x", X + Y)
        with entailment.use_domain("fm"):
            monkeypatch.setattr(fm, "MAX_CONSTRAINTS", original_cap)
            reference = context.assign("x", X + Y)
        assert set(exact.facts) == set(reference.facts)

    def test_assign_detects_infeasibility(self):
        context = Context([X - 1])
        # x := x with the impossible extra fact -x - 1 >= 0 conjoined first.
        contradictory = context.add_facts([-X - 1])
        assert not contradictory.is_satisfiable()
        assert contradictory.assign("y", X).is_unreachable or \
            not contradictory.assign("y", X).is_satisfiable()


class TestContextIntegration:
    def test_join_equals_pairwise_entailment(self):
        rng = random.Random(777)
        for _ in range(25):
            left = Context([random_expr(rng, ["x", "y"]) for _ in range(2)])
            right = Context([random_expr(rng, ["x", "y"]) for _ in range(2)])
            joined = left.join(right)
            if left.is_unreachable or right.is_unreachable:
                assert joined == (right if left.is_unreachable else left)
                continue
            expected = [f for f in left.facts if fm.entails(right.facts, f)]
            expected += [f for f in right.facts
                         if f not in expected and fm.entails(left.facts, f)]
            assert set(joined.facts) == {f for f in expected
                                         if not f.is_constant()}

    def test_join_deduplicates_shared_facts(self):
        shared = X - 1
        left = Context([shared, Y - 2])
        right = Context([shared, Y - 3])
        joined = left.join(right)
        assert list(joined.facts).count(shared) == 1

    def test_entails_context_subset_short_circuit(self):
        engine = get_engine()
        big = Context([X - 1, Y - 2, 10 - X])
        small = Context([Y - 2, X - 1])
        misses_before = engine.stats.misses
        assert big.entails_context(small) is True
        assert engine.stats.misses == misses_before

    def test_widen_keeps_still_valid_facts(self):
        older = Context([X - 1, Y - 5])
        newer = Context([X - 2])          # x >= 2 implies x >= 1, not y >= 5
        widened = older.widen(newer)
        assert set(widened.facts) == {X - 1}

    def test_cache_hit_rate_reported(self):
        engine = EntailmentEngine()
        facts = [X - 1, Y]
        for _ in range(5):
            engine.entails(facts, X * 5)
        stats = engine.stats.as_dict()
        assert stats["queries"] == 5
        assert stats["memo_hits"] >= 4
        assert 0.0 <= stats["hit_rate"] <= 1.0


class TestBackendRegistry:
    """Per-domain engines: selection, switching and lifecycle hooks."""

    def test_get_engine_is_per_domain(self):
        from repro.logic import entailment

        fm_engine = entailment.get_engine("fm")
        poly_engine = entailment.get_engine("polyhedra")
        assert fm_engine is not poly_engine
        assert fm_engine.domain == "fm"
        assert poly_engine.domain == "polyhedra"
        assert entailment.get_engine("fm") is fm_engine       # stable

    def test_unknown_domain_raises(self):
        from repro.logic import entailment

        with pytest.raises(ValueError, match="octagons"):
            entailment.get_engine("octagons")

    def test_use_domain_switches_and_restores(self):
        from repro.logic import entailment

        baseline = entailment.active_domain()
        with entailment.use_domain("polyhedra") as engine:
            assert entailment.active_domain() == "polyhedra"
            assert entailment.get_engine() is engine
        assert entailment.active_domain() == baseline

    def test_reset_engine_is_backend_aware(self):
        from repro.logic import entailment

        fm_engine = entailment.get_engine("fm")
        poly_engine = entailment.get_engine("polyhedra")
        # Named reset replaces exactly that engine.
        fresh = entailment.reset_engine("polyhedra")
        assert fresh is not poly_engine
        assert entailment.get_engine("fm") is fm_engine
        # Bare reset drops the whole registry.
        entailment.reset_engine()
        assert entailment.get_engine("fm") is not fm_engine

    def test_warm_engine_warms_the_named_backend(self):
        from repro.logic import entailment

        entailment.reset_engine()
        warmed = entailment.warm_engine("polyhedra")
        assert warmed.domain == "polyhedra"
        assert warmed is entailment.get_engine("polyhedra")

    def test_queries_agree_across_backends_via_context(self):
        from repro.logic import entailment

        x = LinExpr.var("x")
        gamma = Context([x - 1])                 # x >= 1
        with entailment.use_domain("fm"):
            fm_answers = (gamma.entails(x), gamma.greatest_lower_bound(x),
                          gamma.is_satisfiable())
        with entailment.use_domain("polyhedra"):
            poly_answers = (gamma.entails(x), gamma.greatest_lower_bound(x),
                            gamma.is_satisfiable())
        assert fm_answers == poly_answers == (True, 1, True)
