"""Tests for the ert transformer, the MDP semantics and the Monte-Carlo sampler.

These three substrates must agree with each other (and with hand-computed
expectations) on small programs -- that agreement is exactly how the paper's
evaluation validates measured expectations, and it is also how the analyzer's
bounds are cross-checked elsewhere in the suite.
"""

from fractions import Fraction

import pytest

from repro.lang import builder as B
from repro.lang.distributions import Uniform
from repro.semantics.ert import expected_cost_ert, ert_transformer
from repro.semantics.mdp import MDPSemantics, expected_cost_mdp
import numpy as np

from repro.semantics.sampler import (
    estimate_expected_cost,
    histogram_of_costs,
    mean_relative_error,
    relative_error,
    spawn_seeds,
    sweep_expected_cost,
)


class TestErtLoopFree:
    def test_tick_sequence(self):
        program = B.program(B.proc("main", [], B.tick(2), B.tick(3)))
        assert expected_cost_ert(program) == 5

    def test_probabilistic_choice(self):
        program = B.program(B.proc("main", [],
            B.prob("1/4", B.tick(8), B.tick(0))))
        assert expected_cost_ert(program) == 2

    def test_sampling_expectation(self):
        program = B.program(B.proc("main", [],
            B.sample("k", Uniform(0, 10)), B.tick(B.expr("k"))))
        assert expected_cost_ert(program) == 5

    def test_conditional(self):
        program = B.program(B.proc("main", ["x"],
            B.if_("x > 0", B.tick(3), B.tick(1))))
        assert expected_cost_ert(program, {"x": 5}) == 3
        assert expected_cost_ert(program, {"x": 0}) == 1

    def test_nondeterminism_is_demonic(self):
        program = B.program(B.proc("main", [], B.nondet(B.tick(1), B.tick(9))))
        assert expected_cost_ert(program) == 9

    def test_abort_has_zero_cost(self):
        program = B.program(B.proc("main", [], B.abort(), B.tick(100)))
        assert expected_cost_ert(program) == 0

    def test_assert_false_stops(self):
        program = B.program(B.proc("main", [], B.assert_("0 > 1"), B.tick(100)))
        assert expected_cost_ert(program) == 0

    def test_continuation_passing(self):
        # ert[tick(1)](f) = 1 + f
        command = B.tick(1)
        transformer = ert_transformer(command, continuation=lambda state: Fraction(10))
        assert transformer({}) == 11

    def test_fractional_guard_constant_is_exact(self):
        # The truncation bug fixed in the interpreter also lived in the
        # shared _eval_expr here: 5/2 must not become 2.
        from repro.lang import ast

        guard = ast.BinOp("<", ast.Var("x"), ast.Const(Fraction(5, 2)))
        program = B.program(B.proc("main", ["x"],
            B.if_(guard, B.tick(1), B.tick(9))))
        assert expected_cost_ert(program, {"x": 2}) == 1
        assert expected_cost_ert(program, {"x": 3}) == 9
        assert expected_cost_mdp(program, {"x": 2}) == pytest.approx(1.0)

    def test_composition_matches_paper_example(self):
        # Paper Appendix B: ert of the rdwalk body with post-expectation 2x is 2x.
        body = B.seq(
            B.prob("3/4", B.assign("x", "x - 1"), B.assign("x", "x + 1")),
            B.tick(1))
        transformer = ert_transformer(body, continuation=lambda s: Fraction(2 * max(0, s["x"])))
        for x in (1, 2, 5, 11):
            assert transformer({"x": x}) == 2 * x


class TestErtLoops:
    def test_deterministic_loop_exact_with_enough_fuel(self, deterministic_countdown):
        assert expected_cost_ert(deterministic_countdown, {"x": 6}, fuel=10) == 6

    def test_fuel_monotonicity(self, geometric_program):
        values = [expected_cost_ert(geometric_program, fuel=fuel) for fuel in (1, 3, 6, 12)]
        assert all(values[i] <= values[i + 1] for i in range(len(values) - 1))

    def test_geometric_loop_converges_to_two(self, geometric_program):
        value = expected_cost_ert(geometric_program, fuel=40)
        assert abs(float(value) - 2.0) < 1e-6

    def test_random_walk_expected_cost(self, simple_random_walk):
        value = expected_cost_ert(simple_random_walk, {"x": 2}, fuel=40)
        # True expectation is 4; bounded unrolling approaches it from below.
        assert 3.9 <= float(value) <= 4.0


class TestMDP:
    def test_deterministic_loop(self, deterministic_countdown):
        assert expected_cost_mdp(deterministic_countdown, {"x": 5}) == pytest.approx(5)

    def test_geometric_loop(self, geometric_program):
        assert expected_cost_mdp(geometric_program) == pytest.approx(2.0, abs=1e-6)

    def test_agrees_with_ert_on_random_walk(self, simple_random_walk):
        mdp_value = expected_cost_mdp(simple_random_walk, {"x": 1},
                                      max_configs=1500, iterations=1500)
        ert_value = float(expected_cost_ert(simple_random_walk, {"x": 1}, fuel=40))
        assert mdp_value == pytest.approx(2.0, abs=0.05)
        assert mdp_value >= ert_value - 1e-6

    def test_nondeterminism_takes_maximum(self):
        program = B.program(B.proc("main", [],
            B.nondet(B.tick(3), B.prob("1/2", B.tick(10), B.tick(0)))))
        assert expected_cost_mdp(program) == pytest.approx(5.0)

    def test_truncation_flag(self, simple_random_walk):
        semantics = MDPSemantics(simple_random_walk, max_configs=50)
        semantics.expected_cost({"x": 5}, iterations=200)
        assert semantics.truncated


class TestSampler:
    def test_estimate_matches_exact_expectation(self, geometric_program):
        stats = estimate_expected_cost(geometric_program, runs=3000, seed=5)
        assert stats.mean == pytest.approx(2.0, rel=0.1)
        assert stats.runs == 3000
        assert stats.minimum >= 1.0

    def test_candlestick_ordering(self, simple_random_walk):
        stats = estimate_expected_cost(simple_random_walk, {"x": 10}, runs=400, seed=1)
        low, q1, q3, high = stats.candlestick()
        assert low <= q1 <= stats.median <= q3 <= high

    def test_sweep_is_monotone_for_countdown(self, deterministic_countdown):
        series = sweep_expected_cost(deterministic_countdown, "x", (5, 10, 20), runs=10)
        means = [stats.mean for _, stats in series]
        assert means == sorted(means)
        assert means[0] == pytest.approx(5)

    def test_relative_error(self):
        assert relative_error(110, 100) == pytest.approx(10.0)
        assert relative_error(0, 0) == 0.0
        assert relative_error(1, 0) == float("inf")

    def test_mean_relative_error_ignores_nan(self):
        value = mean_relative_error([(110, 100), (float("nan"), float("nan"))])
        assert value == pytest.approx(10.0)

    def test_histogram(self, simple_random_walk):
        histogram = histogram_of_costs(simple_random_walk, {"x": 5},
                                       runs=300, bins=10, seed=2)
        assert histogram.counts.sum() == 300
        assert histogram.runs == 300
        assert histogram.unfinished_runs == 0
        assert len(histogram.edges) == 11
        assert histogram.mean == pytest.approx(10.0, rel=0.25)

    def test_histogram_reports_unfinished_runs(self):
        # Before PR 4 non-terminated runs were silently dropped: the counts
        # shrank and the mean was computed over survivors only, with no
        # trace in the output.
        program = B.program(B.proc("main", ["x"],
            B.if_("x > 1",
                  B.seq(B.assign("go", "1"), B.while_("go > 0", B.tick(1))),
                  B.tick(7))))
        histogram = histogram_of_costs(program, {"x": 2}, runs=5, seed=0,
                                       max_steps=200)
        assert histogram.unfinished_runs == 5
        assert histogram.runs == 0
        assert histogram.mean != histogram.mean      # NaN, not a biased mean

    def test_histogram_engines_agree(self, simple_random_walk):
        scalar = histogram_of_costs(simple_random_walk, {"x": 8},
                                    runs=800, seed=3, engine="scalar")
        vec = histogram_of_costs(simple_random_walk, {"x": 8},
                                 runs=800, seed=3, engine="vec")
        assert vec.runs == 800
        assert vec.mean == pytest.approx(scalar.mean, rel=0.15)

    def test_unfinished_runs_counted(self):
        program = B.program(B.proc("main", [],
            B.assign("x", "1"), B.while_("x > 0", B.tick(1))))
        stats = estimate_expected_cost(program, runs=3, seed=0, max_steps=500)
        assert stats.unfinished_runs == 3
        assert stats.runs == 0

    def test_unfinished_runs_counted_vec(self):
        program = B.program(B.proc("main", [],
            B.assign("x", "1"), B.while_("x > 0", B.tick(1))))
        stats = estimate_expected_cost(program, runs=3, seed=0, max_steps=500,
                                       engine="vec")
        assert stats.unfinished_runs == 3
        assert stats.runs == 0
        assert stats.engine == "vec"


class TestSweepSeeds:
    def test_spawn_seeds_are_independent_sequences(self):
        seeds = spawn_seeds(0, 4)
        assert len(seeds) == 4
        assert all(isinstance(seed, np.random.SeedSequence) for seed in seeds)
        keys = {tuple(seed.generate_state(2)) for seed in seeds}
        assert len(keys) == 4                      # collision-free
        # ...and deterministic: the same base seed spawns the same children.
        again = spawn_seeds(0, 4)
        for first, second in zip(seeds, again):
            assert tuple(first.generate_state(2)) \
                == tuple(second.generate_state(2))

    def test_spawn_seeds_none_passthrough(self):
        assert spawn_seeds(None, 3) == [None, None, None]

    def test_spawned_streams_differ_from_seed_plus_index(self):
        # The old derivation reused `seed + index`: point i's stream was
        # exactly point (i+1)'s stream shifted by one base seed, so sweep
        # points shared stream state.  Spawned children never equal a
        # plain integer-seeded stream.
        child = spawn_seeds(0, 2)[1]
        child_draws = np.random.default_rng(child).random(4)
        naive_draws = np.random.default_rng(0 + 1).random(4)
        assert not np.allclose(child_draws, naive_draws)

    def test_sweep_is_reproducible(self, deterministic_countdown):
        first = sweep_expected_cost(deterministic_countdown, "x", (3, 6), runs=5)
        second = sweep_expected_cost(deterministic_countdown, "x", (3, 6), runs=5)
        assert [(v, s.mean) for v, s in first] \
            == [(v, s.mean) for v, s in second]
