"""Unit and property tests for the exact Fourier-Motzkin engine."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic.fourier_motzkin import (
    Infeasible,
    Unbounded,
    eliminate_variable,
    entails,
    greatest_lower_bound,
    is_feasible,
    maximize,
    minimize,
)
from repro.utils.linear import LinExpr


def lin(coeffs=None, const=0):
    return LinExpr(coeffs or {}, const)


X = lin({"x": 1})
Y = lin({"y": 1})


class TestFeasibility:
    def test_empty_system_is_feasible(self):
        assert is_feasible([])

    def test_simple_box_is_feasible(self):
        assert is_feasible([X, 10 - X])

    def test_contradiction_detected(self):
        # x >= 1 and -x >= 0 (i.e. x <= 0)
        assert not is_feasible([X - 1, -X])

    def test_constant_contradiction(self):
        assert not is_feasible([lin({}, -1)])

    def test_three_variable_chain(self):
        # x <= y <= z <= x - 1 is infeasible.
        constraints = [Y - X, lin({"z": 1, "y": -1}), X - 1 - lin({"z": 1})]
        assert not is_feasible(constraints)


class TestMinimize:
    def test_simple_lower_bound(self):
        assert minimize(X, [X - 3]) == 3

    def test_combined_bound(self):
        # x >= 1, y >= 2  =>  min(x + y) = 3.
        assert minimize(X + Y, [X - 1, Y - 2]) == 3

    def test_difference_bound(self):
        # x - y >= 5  =>  min(x - y) = 5.
        assert minimize(X - Y, [X - Y - 5]) == 5

    def test_unbounded(self):
        with pytest.raises(Unbounded):
            minimize(X, [Y])

    def test_infeasible(self):
        with pytest.raises(Infeasible):
            minimize(X, [X - 1, -X])

    def test_constant_objective(self):
        assert minimize(lin({}, 7), [X]) == 7

    def test_rational_coefficients(self):
        # 2x >= 3  =>  min x = 3/2.
        assert minimize(X, [lin({"x": 2}, -3)]) == Fraction(3, 2)

    def test_maximize(self):
        assert maximize(X, [lin({"x": -1}, 10), X]) == 10


class TestEntailment:
    def test_guard_entails_weaker_fact(self):
        # x >= 1 entails x >= 0.
        assert entails([X - 1], X)

    def test_guard_does_not_entail_stronger_fact(self):
        assert not entails([X], X - 1)

    def test_transitive_entailment(self):
        # x <= y and y <= z entail x <= z.
        assert entails([Y - X, lin({"z": 1, "y": -1})], lin({"z": 1, "x": -1}))

    def test_unsatisfiable_context_entails_everything(self):
        assert entails([X - 1, -X], lin({"q": 1}, -1000))

    def test_greatest_lower_bound(self):
        assert greatest_lower_bound([X - 2, Y - 3], X + Y) == 5

    def test_greatest_lower_bound_unbounded(self):
        assert greatest_lower_bound([X], Y) is None


class TestNormalisation:
    def test_positive_multiples_dedupe_to_one(self):
        from repro.logic.fourier_motzkin import _dedupe
        # 2x + 2 >= 0 and x + 1 >= 0 are the same constraint; the canonical
        # form keeps exactly one copy.
        deduped = _dedupe([lin({"x": 2}, 2), lin({"x": 1}, 1)])
        assert deduped == [lin({"x": 1}, 1)]

    def test_positive_multiples_with_many_vars_dedupe(self):
        from repro.logic.fourier_motzkin import _dedupe
        base = lin({"x": 2, "y": -4}, 6)
        assert _dedupe([base, base * Fraction(3, 2), base / 2]) \
            == [lin({"x": 1, "y": -2}, 3)]

    def test_dedupe_keeps_strongest_constant(self):
        from repro.logic.fourier_motzkin import _dedupe
        # x + 5 >= 0 is weaker than x + 1 >= 0; keep the strongest.
        deduped = _dedupe([lin({"x": 1}, 5), lin({"x": 2}, 2)])
        assert deduped == [lin({"x": 1}, 1)]

    def test_normalise_preserves_inequality_direction(self):
        # -2x + 4 >= 0 must canonicalise to -x + 2 >= 0 (scale by a positive
        # factor only), not x - 2 >= 0.
        from repro.logic.fourier_motzkin import _normalise
        assert _normalise(lin({"x": -2}, 4)) == lin({"x": -1}, 2)

    def test_normalise_trivial_constants(self):
        from repro.logic.fourier_motzkin import _normalise
        assert _normalise(lin({}, 3)) is None
        with pytest.raises(Infeasible):
            _normalise(lin({}, -1))


class TestElimination:
    def test_eliminate_variable_projects(self):
        # x >= y and 10 - x >= 0 project to 10 - y >= 0.
        constraints = [X - Y, lin({"x": -1}, 10)]
        projected = eliminate_variable(constraints, "x")
        assert any(c.coefficient("y") == Fraction(-1) and c.const_term == 10
                   or c.coefficient("y") == Fraction(-1, 1) for c in projected)
        assert all(c.coefficient("x") == 0 for c in projected)


# -- property-based: FM agrees with brute force on small integer boxes ----------

small_coeff = st.integers(-3, 3)
constraint_strategy = st.builds(
    lambda a, b, c: lin({"x": a, "y": b}, c),
    small_coeff, small_coeff, st.integers(-6, 6))


@settings(max_examples=60, deadline=None)
@given(st.lists(constraint_strategy, min_size=1, max_size=4))
def test_feasibility_is_sound_for_integer_points(constraints):
    """If some integer point satisfies all constraints, FM must say feasible."""
    integer_point_exists = any(
        all(c.evaluate({"x": x, "y": y}) >= 0 for c in constraints)
        for x in range(-8, 9) for y in range(-8, 9))
    if integer_point_exists:
        assert is_feasible(constraints)


@settings(max_examples=60, deadline=None)
@given(st.lists(constraint_strategy, min_size=1, max_size=3),
       st.builds(lambda a, b, c: lin({"x": a, "y": b}, c),
                 small_coeff, small_coeff, st.integers(-4, 4)))
def test_minimize_is_a_lower_bound_on_integer_points(constraints, objective):
    """The FM minimum is <= the objective at every satisfying integer point."""
    try:
        lower = minimize(objective, constraints)
    except (Infeasible, Unbounded):
        return
    for x in range(-6, 7):
        for y in range(-6, 7):
            state = {"x": x, "y": y}
            if all(c.evaluate(state) >= 0 for c in constraints):
                assert objective.evaluate(state) >= lower
