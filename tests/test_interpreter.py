"""Tests for the cost-counting operational interpreter."""

from fractions import Fraction

import numpy as np
import pytest

from repro.lang import builder as B
from repro.lang.distributions import Uniform
from repro.lang.errors import EvaluationError
from repro.semantics.interp import (
    AngelicScheduler,
    DemonicScheduler,
    Interpreter,
    run_program,
)


class TestDeterministicExecution:
    def test_countdown_cost(self, deterministic_countdown):
        result = run_program(deterministic_countdown, {"x": 7}, seed=0)
        assert result.cost == 7
        assert result.terminated
        assert result.state["x"] == 0

    def test_zero_iterations(self, deterministic_countdown):
        assert run_program(deterministic_countdown, {"x": 0}, seed=0).cost == 0

    def test_negative_input(self, deterministic_countdown):
        assert run_program(deterministic_countdown, {"x": -5}, seed=0).cost == 0

    def test_uninitialised_variables_default_to_zero(self):
        program = B.program(B.proc("main", [], B.assign("y", "x + 1"), B.tick(B.expr("y"))))
        result = run_program(program, seed=0)
        assert result.cost == 1

    def test_fractional_tick(self):
        program = B.program(B.proc("main", [], B.tick(Fraction(1, 2)), B.tick(Fraction(1, 2))))
        assert run_program(program, seed=0).cost == 1

    def test_symbolic_tick(self):
        program = B.program(B.proc("main", ["s"], B.tick(B.expr("s"))))
        assert run_program(program, {"s": 9}, seed=0).cost == 9

    def test_arithmetic_operators(self):
        program = B.program(B.proc("main", [],
            B.assign("a", "7"),
            B.assign("b", "a / 2"),       # integer division
            B.assign("c", "a % 2"),
            B.tick(B.expr("b + c"))))
        assert run_program(program, seed=0).cost == 4

    def test_division_by_zero(self):
        program = B.program(B.proc("main", [], B.assign("a", "1 / 0")))
        with pytest.raises(EvaluationError):
            run_program(program, seed=0)

    def test_assert_failure_stops_run(self):
        program = B.program(B.proc("main", ["x"],
            B.assert_("x > 0"), B.tick(5)))
        result = run_program(program, {"x": 0}, seed=0)
        assert result.assertion_failed
        assert result.cost == 0

    def test_assume_like_assert_at_runtime(self):
        program = B.program(B.proc("main", ["x"], B.assume("x >= 0"), B.tick(1)))
        assert run_program(program, {"x": 3}, seed=0).cost == 1
        assert run_program(program, {"x": -1}, seed=0).assertion_failed


class TestFractionalConstants:
    """Non-integral constants evaluate exactly (they used to truncate)."""

    def _guard_program(self):
        from repro.lang import ast
        # if (x < 5/2) tick(1) else tick(9): for x == 2 the guard holds
        # exactly (2 < 2.5); truncating 5/2 to 2 flipped it to 2 < 2.
        guard = ast.BinOp("<", ast.Var("x"), ast.Const(Fraction(5, 2)))
        return B.program(B.proc("main", ["x"],
            B.if_(guard, B.tick(1), B.tick(9))))

    def test_fractional_guard_closure_path(self):
        program = self._guard_program()
        assert run_program(program, {"x": 2}, seed=0).cost == 1
        assert run_program(program, {"x": 3}, seed=0).cost == 9

    def test_fractional_guard_tree_walker_path(self):
        program = self._guard_program()
        interpreter = Interpreter(program)
        import numpy as np
        state = {"x": 2}
        interpreter._rng = np.random.default_rng(0)
        assert interpreter.eval_bool(
            program.main_procedure.body.condition, state)

    def test_fractional_arithmetic_is_exact(self):
        from repro.lang import ast
        # y = x * 1/2, then tick(y): exact halving, not truncation-to-zero
        # of the 1/2 literal.
        half = ast.Const(Fraction(1, 2))
        program = B.program(B.proc("main", ["x"],
            B.assign("y", ast.BinOp("*", ast.Var("x"), half)),
            B.tick(B.expr("y"))))
        result = run_program(program, {"x": 6}, seed=0)
        assert result.cost == 3
        assert result.state["y"] == 3

    def test_integral_constants_stay_ints(self):
        program = B.program(B.proc("main", [], B.assign("y", "7"), B.tick(B.expr("y"))))
        result = run_program(program, seed=0)
        assert result.state["y"] == 7
        assert isinstance(result.state["y"], int)


class TestProbabilisticExecution:
    def test_prob_choice_statistics(self):
        program = B.program(B.proc("main", [],
            B.prob("3/4", B.tick(1), B.tick(0))))
        interpreter = Interpreter(program)
        rng = np.random.default_rng(42)
        total = sum(float(interpreter.run({}, rng=rng).cost) for _ in range(2000))
        assert 0.70 <= total / 2000 <= 0.80

    def test_sampling_assignment(self):
        program = B.program(B.proc("main", [],
            B.incr_sample("x", Uniform(5, 5)), B.tick(B.expr("x"))))
        assert run_program(program, seed=0).cost == 5

    def test_sampling_subtraction(self):
        program = B.program(B.proc("main", ["x"],
            B.decr_sample("x", Uniform(2, 2)), B.tick(B.expr("x"))))
        assert run_program(program, {"x": 10}, seed=0).cost == 8

    def test_geometric_loop_mean(self, geometric_program):
        interpreter = Interpreter(geometric_program)
        rng = np.random.default_rng(7)
        costs = [float(interpreter.run({}, rng=rng).cost) for _ in range(3000)]
        assert 1.85 <= sum(costs) / len(costs) <= 2.15

    def test_random_walk_mean_close_to_2x(self, simple_random_walk):
        interpreter = Interpreter(simple_random_walk)
        rng = np.random.default_rng(3)
        costs = [float(interpreter.run({"x": 20}, rng=rng).cost) for _ in range(1500)]
        mean = sum(costs) / len(costs)
        assert 36 <= mean <= 44      # expected value is exactly 40

    def test_reproducible_with_seed(self, simple_random_walk):
        first = run_program(simple_random_walk, {"x": 30}, seed=123)
        second = run_program(simple_random_walk, {"x": 30}, seed=123)
        assert first.cost == second.cost


class TestSchedulers:
    def _nondet_program(self):
        return B.program(B.proc("main", [], B.nondet(B.tick(10), B.tick(1))))

    def test_demonic_takes_left(self):
        result = run_program(self._nondet_program(), scheduler=DemonicScheduler(), seed=0)
        assert result.cost == 10

    def test_angelic_takes_right(self):
        result = run_program(self._nondet_program(), scheduler=AngelicScheduler(), seed=0)
        assert result.cost == 1

    def test_star_guard_with_demonic_scheduler_terminates_via_deterministic_part(self):
        program = B.program(B.proc("main", ["y"],
            B.while_(B.expr("y >= 100 && *"),
                B.assign("y", "y - 100"),
                B.tick(1))))
        result = run_program(program, {"y": 350}, scheduler=DemonicScheduler(), seed=0)
        assert result.cost == 3


class TestStepBudget:
    def test_nonterminating_program_hits_budget(self):
        program = B.program(B.proc("main", [],
            B.assign("x", "1"),
            B.while_("x > 0", B.tick(1))))
        result = run_program(program, seed=0, max_steps=2000)
        assert not result.terminated

    def test_call_depth_limit(self):
        program = B.program(
            B.proc("main", [], B.call("loop")),
            B.proc("loop", [], B.call("loop")))
        interpreter = Interpreter(program, max_call_depth=16)
        with pytest.raises(EvaluationError):
            interpreter.run({})


class TestProcedureCalls:
    def test_call_shares_global_state(self):
        program = B.program(
            B.proc("main", ["n"],
                B.while_("n > 0", B.call("dec"))),
            B.proc("dec", [], B.assign("n", "n - 1"), B.tick(2)))
        assert run_program(program, {"n": 5}, seed=0).cost == 10

    def test_undefined_procedure(self):
        program = B.program(B.proc("main", [], B.call("nowhere")))
        with pytest.raises(EvaluationError):
            run_program(program, seed=0)
