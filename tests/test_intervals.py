"""The interval pre-filter tier: deciders, counters, and wiring pins.

Covers the :mod:`repro.logic.intervals` box itself (bounds harvesting,
propagation, witness points, unboundedness certificates -- every decided
answer must equal the exact backend's), the engine's tier accounting
(interval hits never double-count syntactic hits, ``entails_context``'s
subset short circuit stays out of every tier), the ``prefilter`` toggle
(identical answers on and off), the generator-side ``assign`` acceptance
pin (zero Fourier-Motzkin eliminations under the polyhedra domain), and
the ``Context`` error-handling satellites (a genuine ``MemoryError``
propagates out of ``assign``; the constraint cap still degrades to havoc;
``greatest_lower_bound`` answers ``None`` on unreachable contexts).
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.logic import fourier_motzkin as fm
from repro.logic.contexts import Context
from repro.logic.entailment import (EntailmentEngine, FourierMotzkinBackend,
                                    get_engine, reset_engine, resolve_prefilter,
                                    use_domain, use_prefilter)
from repro.logic.intervals import UNDECIDED, IntervalBox
from repro.logic.polyhedra import PolyhedraBackend
from repro.utils.linear import LinExpr


def expr(coeffs, const=0) -> LinExpr:
    return LinExpr({var: Fraction(value) for var, value in coeffs.items()},
                   Fraction(const))


X = LinExpr.var("x")
Y = LinExpr.var("y")
N = LinExpr.var("n")


# ---------------------------------------------------------------------------
# The box itself
# ---------------------------------------------------------------------------

class TestBoxConstruction:

    def test_single_variable_facts_become_bounds(self):
        # x >= 1 and -x + 5 >= 0 (x <= 5)
        box = IntervalBox.from_facts([X - LinExpr.const(1),
                                      -X + LinExpr.const(5)])
        assert box.bounds["x"] == (Fraction(1), Fraction(5))
        assert box.exact and not box.infeasible

    def test_crossed_bounds_prove_infeasibility(self):
        box = IntervalBox.from_facts([X - LinExpr.const(3),
                                      -X + LinExpr.const(2)])
        assert box.infeasible

    def test_negative_constant_fact_is_infeasible(self):
        box = IntervalBox.from_facts([LinExpr.const(-1)])
        assert box.infeasible

    def test_multi_variable_facts_break_exactness(self):
        box = IntervalBox.from_facts([X, Y, N - X - Y])
        assert not box.exact
        assert len(box.residual) == 1

    def test_propagation_derives_bounds_from_residual_facts(self):
        # i <= 100 and i + k - 51 >= 0 imply k >= -49.
        i = LinExpr.var("i")
        k = LinExpr.var("k")
        box = IntervalBox.from_facts([-i + LinExpr.const(100),
                                      i + k - LinExpr.const(51)])
        assert box.bounds["k"][0] == Fraction(-49)

    def test_propagation_detects_infeasibility_through_a_chain(self):
        # x >= 10, y >= x (y - x >= 0), y <= 5: crossed after one round.
        box = IntervalBox.from_facts([X - LinExpr.const(10), Y - X,
                                      -Y + LinExpr.const(5)])
        assert box.infeasible

    def test_minimum_is_corner_evaluation(self):
        box = IntervalBox.from_facts([X - LinExpr.const(1),
                                      -X + LinExpr.const(5),
                                      Y - LinExpr.const(2)])
        # min of x - y over [1,5] x [2,inf) is 1 - inf = -inf... but the
        # negative coefficient needs y's *upper* bound: unbounded.
        assert box.minimum(X - Y) is None
        # min of x + y is 1 + 2 = 3.
        assert box.minimum(X + Y) == Fraction(3)


class TestBoxDeciders:

    def test_entails_true_from_bounds(self):
        box = IntervalBox.from_facts([X - LinExpr.const(1)])
        assert box.entails(X) is True

    def test_entails_false_needs_exactness_or_witness(self):
        exact_box = IntervalBox.from_facts([X - LinExpr.const(1)])
        assert exact_box.entails(X - LinExpr.const(2)) is False
        # Witness: x >= 0, y >= 0, n - x - y >= 0; the corner x=0 extends
        # to a genuine point (y=0, n=0), so "x >= 1" is decidedly False.
        witness_box = IntervalBox.from_facts([X, Y, N - X - Y])
        assert witness_box.entails(X - LinExpr.const(1)) is False

    def test_entails_undecided_when_bounds_cannot_answer(self):
        # x <= 5 with residual x + y >= 0: min of y over the region is
        # finite (-5... no: y >= -x >= -5 via propagation) -- pick a truly
        # undecidable shape: two coupled residuals.
        box = IntervalBox.from_facts([X - Y, Y - X + LinExpr.const(1)])
        assert box.entails(X - Y - LinExpr.const(1)) in (False, UNDECIDED)

    def test_infeasible_context_entails_everything(self):
        box = IntervalBox.from_facts([LinExpr.const(-1)])
        assert box.entails(-X) is True
        assert box.is_satisfiable() is False
        assert box.glb(X) is None

    def test_satisfiable_by_witness(self):
        box = IntervalBox.from_facts([X, Y, N - X - Y])
        assert box.is_satisfiable() is True

    def test_glb_exact_box(self):
        box = IntervalBox.from_facts([X - LinExpr.const(2)])
        assert box.glb(X + LinExpr.const(1)) == Fraction(3)
        assert box.glb(-X) is None  # unbounded above => -x unbounded below

    def test_glb_by_witness_corner(self):
        # x >= 0, y >= 0, n - x - y >= 0: glb(x + y) = 0 at the origin,
        # which satisfies the residual fact (n=0).
        box = IntervalBox.from_facts([X, Y, N - X - Y])
        assert box.glb(X + Y) == Fraction(0)

    def test_glb_halfspace_proportional(self):
        # Single fact n - x - y - 1 >= 0, no bounds: glb(2n - 2x - 2y) = 2.
        fact = N - X - Y - LinExpr.const(1)
        box = IntervalBox.from_facts([fact])
        assert box.glb(expr({"n": 2, "x": -2, "y": -2})) == Fraction(2)

    def test_glb_halfspace_independent_form_is_unbounded(self):
        # Single fact a + 3b - 4 >= 0; 2a - 5 slides along the boundary:
        # decidedly unbounded (the regression from the bound-mismatch bug).
        a = LinExpr.var("a")
        b = LinExpr.var("b")
        box = IntervalBox.from_facts([a + 3 * b - LinExpr.const(4)])
        assert box.glb(2 * a - LinExpr.const(5)) is None
        assert box.entails(2 * a - LinExpr.const(5)) is False

    def test_glb_coordinate_ray_unboundedness(self):
        # i <= 100, -i - k + 50 >= 0: k can decrease without limit, so
        # i + 2k is unbounded below (witnessed non-empty).
        i = LinExpr.var("i")
        k = LinExpr.var("k")
        box = IntervalBox.from_facts([-i + LinExpr.const(100),
                                      -i - k + LinExpr.const(50)])
        assert box.glb(i + 2 * k) is None

    def test_decided_answers_match_exact_backend_on_fixed_corpus(self):
        """Every decided answer equals the exact one on a curated corpus."""
        systems = [
            [X, Y, N - X - Y],
            [X - LinExpr.const(1), -X + LinExpr.const(5)],
            [N - X - LinExpr.const(1)],
            [X - Y, Y - X + LinExpr.const(1)],
            [-X + LinExpr.const(100), -X - Y + LinExpr.const(50)],
            [LinExpr.const(-1)],
        ]
        queries = [X, -X, X + Y, X - Y, N - X, 2 * X - LinExpr.const(5),
                   X + 2 * Y - LinExpr.const(51)]
        for facts in systems:
            box = IntervalBox.from_facts(facts)
            with use_prefilter(False):
                engine = EntailmentEngine(FourierMotzkinBackend())
                for query in queries:
                    verdict = box.entails(query)
                    if verdict is not UNDECIDED:
                        assert verdict == engine.entails(tuple(facts), query), \
                            (facts, query)
                    value = box.glb(query)
                    if value is not UNDECIDED:
                        assert value == engine.greatest_lower_bound(
                            tuple(facts), query), (facts, query)
                sat = box.is_satisfiable()
                if sat is not UNDECIDED:
                    assert sat == engine.is_feasible(tuple(facts)), facts


# ---------------------------------------------------------------------------
# Engine tier accounting
# ---------------------------------------------------------------------------

class TestTierCounters:

    def make_engine(self) -> EntailmentEngine:
        return EntailmentEngine(FourierMotzkinBackend())

    def test_interval_hit_counted_once(self):
        engine = self.make_engine()
        facts = (X, Y, N - X - Y)
        with use_prefilter(True):
            assert engine.greatest_lower_bound(facts, X + Y) == Fraction(0)
        assert engine.stats.interval_hits == 1
        assert engine.stats.misses == 0
        # Second ask is a memo hit, not another interval hit.
        with use_prefilter(True):
            engine.greatest_lower_bound(facts, X + Y)
        assert engine.stats.interval_hits == 1
        assert engine.stats.memo_hits == 1

    def test_syntactic_hit_not_double_counted_as_interval(self):
        engine = self.make_engine()
        facts = (X - LinExpr.const(1),)
        with use_prefilter(True):
            # The query IS a fact: the syntactic tier answers first.
            assert engine.entails(facts, X - LinExpr.const(1)) is True
        assert engine.stats.fast_hits == 1
        assert engine.stats.interval_hits == 0

    def test_entails_context_subset_path_is_in_no_tier(self):
        stats = get_engine().stats.snapshot()
        sub = Context([X, Y])
        sup = Context([X])
        assert sub.entails_context(sup)
        delta = get_engine().stats.delta(stats)
        assert delta["queries"] == 0
        assert delta["interval_hits"] == 0

    def test_tier_partition_sums_to_queries(self):
        engine = self.make_engine()
        facts = (X, Y, N - X - Y, X - Y)
        queries = [X, X + Y, X - Y - LinExpr.const(3), N - X]
        with use_prefilter(True):
            engine.entails_many(facts, queries)
            engine.is_feasible(facts)
            engine.greatest_lower_bound(facts, X + Y)
        tiers = engine.stats.tiers()
        assert sum(tiers.values()) == engine.stats.queries

    def test_interval_hit_rate_measures_tier_reaching_queries(self):
        stats = self.make_engine().stats
        stats.queries = 10
        stats.memo_hits = 5
        stats.fast_hits = 1
        stats.interval_hits = 3
        stats.misses = 1
        assert stats.interval_hit_rate() == 0.75
        assert stats.as_dict()["tiers"]["interval"] == 3


# ---------------------------------------------------------------------------
# The prefilter toggle
# ---------------------------------------------------------------------------

class TestPrefilterToggle:

    def test_resolve_values(self):
        assert resolve_prefilter(True) is True
        assert resolve_prefilter("on") is True
        assert resolve_prefilter("off") is False
        assert resolve_prefilter(False) is False
        with pytest.raises(ValueError):
            resolve_prefilter("sometimes")

    def test_resolve_none_follows_active_setting(self):
        with use_prefilter(False):
            assert resolve_prefilter(None) is False
        with use_prefilter(True):
            assert resolve_prefilter(None) is True

    def test_answers_identical_on_and_off(self):
        facts = (X, Y, N - X - Y, X - Y)
        queries = [X, -X, X + Y, X - Y - LinExpr.const(3), N - X,
                   2 * X - LinExpr.const(5)]
        for backend in (FourierMotzkinBackend, PolyhedraBackend):
            on_engine = EntailmentEngine(backend())
            off_engine = EntailmentEngine(backend())
            with use_prefilter(True):
                on = [on_engine.entails(facts, q) for q in queries]
                on_glb = [on_engine.greatest_lower_bound(facts, q)
                          for q in queries]
                on_sat = on_engine.is_feasible(facts)
            with use_prefilter(False):
                off = [off_engine.entails(facts, q) for q in queries]
                off_glb = [off_engine.greatest_lower_bound(facts, q)
                           for q in queries]
                off_sat = off_engine.is_feasible(facts)
            assert on == off
            assert on_glb == off_glb
            assert on_sat == off_sat
            assert off_engine.stats.interval_hits == 0

    def test_engine_stats_reports_prefilter_state(self):
        from repro.logic.entailment import engine_stats
        with use_prefilter(False):
            assert engine_stats()["prefilter"] is False
        with use_prefilter(True):
            assert engine_stats()["prefilter"] is True


# ---------------------------------------------------------------------------
# Generator-side assign: the zero-FM acceptance pin
# ---------------------------------------------------------------------------

class TestAssignWithoutElimination:

    def test_polyhedra_assign_never_runs_fourier_motzkin(self):
        engine = reset_engine("polyhedra")
        with use_domain("polyhedra"):
            context = Context([X, Y, N - X - Y])
            context = context.assign("x", X + LinExpr.const(1))
            context = context.assign_interval("y", Y, Fraction(0), Fraction(2))
            context = context.assign("n", N - X)
            assert context.facts
        assert engine.stats.fm_eliminations == 0

    def test_fm_assign_matches_polyhedra_assign(self):
        fm_engine = EntailmentEngine(FourierMotzkinBackend())
        poly_engine = EntailmentEngine(PolyhedraBackend())
        facts = (X, Y, N - X - Y)
        left = fm_engine.assign(facts, "x", X + LinExpr.const(1))
        right = poly_engine.assign(facts, "x", X + LinExpr.const(1))
        assert left == right
        assert fm_engine.stats.fm_eliminations > 0
        assert poly_engine.stats.fm_eliminations == 0


# ---------------------------------------------------------------------------
# Context error handling (the bugfix satellites)
# ---------------------------------------------------------------------------

class TestContextErrorHandling:

    def test_constraint_cap_degrades_to_havoc(self, monkeypatch):
        monkeypatch.setattr(fm, "MAX_CONSTRAINTS", 0)
        reset_engine()
        context = Context([X, Y, N - X - Y])
        result = context.assign("x", X + Y)
        # The cap is a backend resource limit: the variable is havocked,
        # the analysis continues.
        assert not result.is_unreachable
        reset_engine()

    def test_real_memory_error_propagates_from_assign(self, monkeypatch):
        context = Context([X, Y])

        def exploding_assign(*args, **kwargs):
            raise MemoryError("the real thing")

        monkeypatch.setattr(get_engine(), "assign", exploding_assign)
        # A genuine MemoryError is NOT a constraint-cap signal and must not
        # be silently converted into a havoc.
        with pytest.raises(MemoryError):
            context.assign("x", X + Y)
        with pytest.raises(MemoryError):
            context.assign_interval("x", X, Fraction(0), Fraction(1))

    def test_glb_is_none_on_unreachable_context(self):
        context = Context.unreachable_context()
        assert context.greatest_lower_bound(X) is None
        # ... and on a context that *becomes* unsatisfiable.
        contradiction = Context([X - LinExpr.const(3),
                                 -X + LinExpr.const(2)])
        assert contradiction.greatest_lower_bound(X) is None

    def test_glb_on_reachable_context_is_a_certified_constant(self):
        context = Context([X - LinExpr.const(2)])
        assert context.greatest_lower_bound(X) == Fraction(2)
