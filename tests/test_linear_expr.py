"""Unit and property tests for repro.utils.linear.LinExpr."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.utils.linear import LinExpr, linear_combination


def lin(coeffs=None, const=0):
    return LinExpr(coeffs or {}, const)


class TestConstruction:
    def test_zero_coefficients_dropped(self):
        expr = lin({"x": 0, "y": 2})
        assert expr.variables() == ("y",)

    def test_var_constructor(self):
        assert LinExpr.var("x").coefficient("x") == 1

    def test_const_constructor(self):
        assert LinExpr.const("3/2").const_term == Fraction(3, 2)

    def test_is_constant(self):
        assert lin({}, 5).is_constant()
        assert not lin({"x": 1}).is_constant()

    def test_is_zero(self):
        assert LinExpr.zero().is_zero()
        assert not lin({}, 1).is_zero()


class TestAlgebra:
    def test_addition(self):
        result = lin({"x": 1}, 2) + lin({"x": 2, "y": 1}, 3)
        assert result.coefficient("x") == 3
        assert result.coefficient("y") == 1
        assert result.const_term == 5

    def test_addition_with_scalar(self):
        assert (lin({"x": 1}) + 4).const_term == 4

    def test_subtraction_cancels(self):
        expr = lin({"x": 2}, 1)
        assert (expr - expr).is_zero()

    def test_negation(self):
        expr = -lin({"x": 3}, -2)
        assert expr.coefficient("x") == -3
        assert expr.const_term == 2

    def test_scalar_multiplication(self):
        expr = lin({"x": 2}, 4) * Fraction(1, 2)
        assert expr.coefficient("x") == 1
        assert expr.const_term == 2

    def test_division(self):
        assert (lin({"x": 3}) / 3).coefficient("x") == 1

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            lin({"x": 1}) / 0

    def test_rsub(self):
        expr = 5 - lin({"x": 1})
        assert expr.coefficient("x") == -1
        assert expr.const_term == 5


class TestSubstitution:
    def test_substitute_variable(self):
        expr = lin({"x": 2, "y": 1})
        result = expr.substitute("x", lin({"y": 1}, 3))
        assert result.coefficient("y") == 3
        assert result.const_term == 6
        assert result.coefficient("x") == 0

    def test_substitute_absent_variable(self):
        expr = lin({"y": 1})
        assert expr.substitute("x", lin({}, 7)) == expr

    def test_substitute_all(self):
        expr = lin({"x": 1, "y": 1})
        result = expr.substitute_all({"x": lin({}, 1), "y": lin({}, 2)})
        assert result == lin({}, 3)

    def test_rename(self):
        expr = lin({"x": 1, "y": 2})
        renamed = expr.rename({"x": "z"})
        assert renamed.coefficient("z") == 1
        assert renamed.coefficient("y") == 2


class TestEvaluation:
    def test_evaluate(self):
        expr = lin({"x": 2, "y": -1}, 3)
        assert expr.evaluate({"x": 4, "y": 1}) == 10

    def test_evaluate_missing_variable(self):
        with pytest.raises(KeyError):
            lin({"x": 1}).evaluate({})


class TestNormalisation:
    def test_normalised_scale_positive(self):
        scale, canonical = lin({"x": -2}, 4).normalised()
        assert scale == 2
        assert canonical == lin({"x": -1}, 2)

    def test_normalised_constant(self):
        scale, canonical = lin({}, 7).normalised()
        assert scale == 1 and canonical.const_term == 7

    def test_scaled_expressions_share_canonical_form(self):
        _, a = lin({"x": 2, "y": -2}).normalised()
        _, b = lin({"x": 5, "y": -5}).normalised()
        assert a == b


class TestHashingAndDisplay:
    def test_equal_expressions_hash_equal(self):
        assert hash(lin({"x": 1}, 1)) == hash(lin({"x": 1}, 1))

    def test_usable_as_dict_key(self):
        table = {lin({"x": 1}): "a"}
        assert table[lin({"x": 1})] == "a"

    def test_str_contains_variables(self):
        assert "x" in str(lin({"x": 1}, 2))

    def test_linear_combination(self):
        combined = linear_combination([(2, lin({"x": 1})), (3, lin({}, 1))])
        assert combined == lin({"x": 2}, 3)


# -- property-based tests ------------------------------------------------------

variables = st.sampled_from(["x", "y", "z", "w"])
fractions = st.fractions(min_value=-20, max_value=20, max_denominator=8)
lin_exprs = st.builds(
    lambda coeffs, const: LinExpr(coeffs, const),
    st.dictionaries(variables, fractions, max_size=4),
    fractions,
)
states = st.dictionaries(variables, st.integers(-50, 50), min_size=4, max_size=4)


@given(lin_exprs, lin_exprs, states)
def test_addition_is_pointwise(a, b, state):
    assert (a + b).evaluate(state) == a.evaluate(state) + b.evaluate(state)


@given(lin_exprs, fractions, states)
def test_scaling_is_pointwise(a, factor, state):
    assert (a * factor).evaluate(state) == factor * a.evaluate(state)


@given(lin_exprs, lin_exprs, states)
def test_substitution_semantics(a, replacement, state):
    substituted = a.substitute("x", replacement)
    new_state = dict(state)
    new_state["x"] = replacement.evaluate(state)
    assert substituted.evaluate(state) == a.evaluate(new_state)


@given(lin_exprs)
def test_normalisation_preserves_direction(a):
    scale, canonical = a.normalised()
    assert scale > 0
    assert canonical * scale == a
