"""The static-diagnostics front end: every code positive AND negative.

Each R-code gets at least one program that triggers it and one near-
identical program that must stay silent -- the false-positive guard is
what makes the CI gate (``repro lint --strict`` over the registry)
trustworthy.  Also covered: span fidelity, the stable JSON schema, the
CLI exit codes, and the byte-identity of analysis results under the
pre-flight gate.
"""

from __future__ import annotations

import json
import re

import pytest

from repro import cli
from repro.exitcodes import (EXIT_LINT, EXIT_OK, EXIT_PARSE_ERROR,
                             exit_code_for_statuses)
from repro.lang.analysis import (CODES, Diagnostic, lint_program, lint_source,
                                 max_severity, severity_counts)
from repro.lang.parser import parse_program


def codes_of(diagnostics):
    return {diag.code for diag in diagnostics}


def lint(source, **kwargs):
    return lint_source(source, **kwargs)


# ---------------------------------------------------------------------------
# Positive / negative pairs, one per code
# ---------------------------------------------------------------------------

def test_r001_parse_error_positive():
    diagnostics = lint("proc main( {")
    assert [diag.code for diag in diagnostics] == ["R001"]
    diag = diagnostics[0]
    assert diag.severity == "error"
    assert diag.span is not None and diag.span.line == 1
    # The structured record carries the position; the message must not
    # repeat it (the double-prefix regression).
    assert "line 1" not in diag.message


def test_r001_negative_on_valid_source():
    assert "R001" not in codes_of(lint("proc main(n) { tick(1); }"))


def test_r101_uninitialized_read_positive():
    diagnostics = lint("proc main(n) {\n  x = q + 1;\n}")
    r101 = [diag for diag in diagnostics if diag.code == "R101"]
    assert len(r101) == 1 and "'q'" in r101[0].message
    assert r101[0].span.line == 2


def test_r101_negative_when_assigned_first():
    source = "proc main(n) {\n  q = 1;\n  x = q + 1;\n}"
    assert "R101" not in codes_of(lint(source))


def test_r102_possibly_uninitialized_positive():
    source = ("proc main(n) {\n"
              "  if (n > 0) { t = 1; }\n"
              "  tick(t);\n"
              "}")
    r102 = [diag for diag in lint(source) if diag.code == "R102"]
    assert len(r102) == 1 and "'t'" in r102[0].message
    assert r102[0].span.line == 3


def test_r102_negative_when_both_branches_assign():
    source = ("proc main(n) {\n"
              "  if (n > 0) { t = 1; } else { t = 2; }\n"
              "  tick(t);\n"
              "}")
    assert codes_of(lint(source)).isdisjoint({"R101", "R102"})


def test_r103_unused_declaration_positive():
    diagnostics = lint("proc main(n, unused) { tick(n); }")
    r103 = [diag for diag in diagnostics if diag.code == "R103"]
    assert len(r103) == 1 and "'unused'" in r103[0].message


def test_r103_negative_when_used_through_call():
    # Under the global-state convention a main parameter may only be
    # touched inside a callee -- that still counts as used.
    source = ("proc main(h) { call helper; }\n"
              "proc helper() { h = h - 1; }")
    assert "R103" not in codes_of(lint(source))


def test_r104_duplicate_declaration_positive():
    diagnostics = lint("proc main(n) { local t, t; t = n; tick(t); }")
    r104 = [diag for diag in diagnostics if diag.code == "R104"]
    assert len(r104) == 1 and "'t'" in r104[0].message


def test_r104_negative_for_distinct_locals():
    source = "proc main(n) { local s, t; s = n; t = s; tick(t); }"
    assert "R104" not in codes_of(lint(source))


def test_r105_undefined_procedure_positive():
    diagnostics = lint("proc main(n) { call nosuch; }")
    r105 = [diag for diag in diagnostics if diag.code == "R105"]
    assert len(r105) == 1 and "'nosuch'" in r105[0].message
    assert r105[0].severity == "error"


def test_r105_negative_for_defined_procedure():
    source = "proc main(n) { call helper; }\nproc helper() { tick(1); }"
    assert "R105" not in codes_of(lint(source))


def test_r201_degenerate_probability_positive():
    source = "proc main(n) { prob(1) { tick(1); } else { tick(2); } }"
    r201 = [diag for diag in lint(source) if diag.code == "R201"]
    assert len(r201) == 1


def test_r201_negative_for_proper_probability():
    source = "proc main(n) { prob(1/2) { tick(1); } else { tick(2); } }"
    assert "R201" not in codes_of(lint(source))


def test_r202_negative_tick_positive():
    r202 = [diag for diag in lint("proc main(n) { tick(0 - 2); }")
            if diag.code == "R202"]
    assert len(r202) == 1


def test_r202_negative_for_positive_tick():
    assert "R202" not in codes_of(lint("proc main(n) { tick(2); }"))


def test_r203_deterministic_distribution_positive():
    source = "proc main(n) { x = unif(2, 2); tick(x); }"
    r203 = [diag for diag in lint(source) if diag.code == "R203"]
    assert len(r203) == 1 and "always" in r203[0].message


def test_r203_negative_for_spread_distribution():
    source = "proc main(n) { x = unif(0, 2); tick(x); }"
    assert "R203" not in codes_of(lint(source))


def test_r301_constant_condition_positive():
    source = "proc main(n) { if (1 > 0) { tick(1); } else { tick(2); } }"
    r301 = [diag for diag in lint(source) if diag.code == "R301"]
    assert len(r301) == 1


def test_r301_negative_for_input_dependent_condition():
    source = "proc main(n) { if (n > 0) { tick(1); } else { tick(2); } }"
    assert "R301" not in codes_of(lint(source))


def test_r302_unreachable_code_positive():
    source = "proc main(n) { if (1 > 0) { tick(1); } else { tick(2); } }"
    r302 = [diag for diag in lint(source) if diag.code == "R302"]
    assert len(r302) == 1   # the else branch is dead


def test_r302_negative_when_both_branches_live():
    source = "proc main(n) { if (n > 0) { tick(1); } else { tick(2); } }"
    assert "R302" not in codes_of(lint(source))


def test_r303_divergent_loop_positive():
    source = "proc main(n) { while (1 > 0) { tick(1); } }"
    r303 = [diag for diag in lint(source) if diag.code == "R303"]
    assert len(r303) == 1


def test_r303_guard_never_modified_positive():
    source = "proc main(n) { while (n > 0) { tick(1); } }"
    assert "R303" in codes_of(lint(source))


def test_r303_negative_for_decrementing_loop():
    source = "proc main(n) { while (n > 0) { tick(1); n = n - 1; } }"
    assert "R303" not in codes_of(lint(source))


def test_r303_negative_when_body_can_stop():
    # An assert in the body can terminate the program, so a constant
    # guard alone does not prove divergence.
    source = ("proc main(n) {\n"
              "  while (1 > 0) { tick(1); assert(n > 0); n = n - 1; }\n"
              "}")
    assert "R303" not in codes_of(lint(source))


def test_r401_overflow_risk_positive():
    source = ("proc main(n) {\n"
              "  x = 2305843009213693952;\n"   # 2^61: still representable
              "  y = x * 4;\n"                 # 2^63: over the limit
              "}")
    r401 = [diag for diag in lint(source) if diag.code == "R401"]
    assert len(r401) == 1
    assert r401[0].span.line == 3


def test_r401_negative_for_small_values():
    source = "proc main(n) { x = 1000000; y = x * 4; tick(y); }"
    assert "R401" not in codes_of(lint(source))


def test_r401_negative_for_unbounded_but_widened_values():
    # The interval for n is top (no finite bound), so no overflow claim.
    source = "proc main(n) { y = n * n; tick(1); }"
    assert "R401" not in codes_of(lint(source))


def test_r501_not_vectorizable_positive():
    source = "proc main(n) { x = 9223372036854775807; tick(1); }"
    r501 = [diag for diag in lint(source) if diag.code == "R501"]
    assert len(r501) == 1
    assert r501[0].severity == "info"
    assert "2^61" in r501[0].message


def test_r501_negative_for_vectorizable_program():
    source = "proc main(n) { while (n > 0) { tick(1); n = n - 1; } }"
    assert "R501" not in codes_of(lint(source))


def test_r502_not_analyzable_positive():
    source = "proc main(n) { tick(n * n); }"
    r502 = [diag for diag in lint(source) if diag.code == "R502"]
    assert len(r502) == 1
    assert r502[0].severity == "info"
    assert "not linear" in r502[0].message


def test_r502_negative_for_linear_ticks():
    source = "proc main(n) { tick(n + 1); }"
    assert "R502" not in codes_of(lint(source))


# ---------------------------------------------------------------------------
# Structure: spans, ordering, schema, helpers
# ---------------------------------------------------------------------------

def test_every_code_has_a_registered_severity():
    assert set(CODES) == {
        "R001", "R101", "R102", "R103", "R104", "R105",
        "R201", "R202", "R203", "R301", "R302", "R303",
        "R401", "R501", "R502",
    }
    for severity, _title in CODES.values():
        assert severity in ("error", "warning", "info")


def test_diagnostics_are_source_ordered_and_deduplicated():
    source = ("proc main(n) {\n"
              "  a = q + 1;\n"
              "  b = q + 2;\n"
              "  while (1 > 0) { tick(1); }\n"
              "}")
    diagnostics = lint(source)
    keys = [(diag.span.line if diag.span else 0, diag.code)
            for diag in diagnostics]
    assert keys == sorted(keys)
    assert len(set((d.code, d.message,
                    d.span.line if d.span else 0) for d in diagnostics)) \
        == len(diagnostics)
    # The R101 for q is reported once (deduplicated by variable).
    assert sum(1 for diag in diagnostics if diag.code == "R101") == 1


def test_json_schema_is_stable():
    diagnostics = lint("proc main(n) {\n  x = q + 1;\n}")
    payload = [diag.to_dict() for diag in diagnostics]
    for record in payload:
        assert set(record) == {"code", "severity", "line", "column",
                               "message", "hint", "procedure"}
    # Round trip through JSON preserves everything.
    rebuilt = [Diagnostic.from_dict(record)
               for record in json.loads(json.dumps(payload))]
    assert rebuilt == list(diagnostics)


def test_severity_helpers():
    diagnostics = lint("proc main(n) {\n  x = q + 1;\n  tick(0 - 1);\n}")
    counts = severity_counts(diagnostics)
    assert counts["error"] >= 1 and counts["warning"] >= 1
    assert max_severity(diagnostics) == "error"
    assert max_severity([]) is None


def test_unknown_code_is_rejected():
    with pytest.raises(ValueError):
        Diagnostic(code="R999", message="nope")


def test_lint_program_accepts_initial_state_override():
    program = parse_program("proc main(n) { cost = cost + n; tick(1); }")
    assert "R102" in codes_of(lint_program(program)) \
        or "R101" in codes_of(lint_program(program))
    seeded = lint_program(program, initial_state={"n", "cost"})
    assert codes_of(seeded).isdisjoint({"R101", "R102"})


# ---------------------------------------------------------------------------
# Registry cleanliness (the CI gate's precondition)
# ---------------------------------------------------------------------------

def test_registry_benchmarks_are_lint_clean():
    from repro.bench.registry import benchmark_names, get_benchmark

    dirty = {}
    for name in benchmark_names():
        benchmark = get_benchmark(name)
        source = benchmark.source_text()
        counter = benchmark.analyzer_options.get("resource_counter")
        program = parse_program(source)
        initial = set(program.main_procedure.params)
        if counter:
            initial.add(counter)
        diagnostics = lint_source(source, initial_state=initial)
        if diagnostics:
            dirty[name] = [diag.format() for diag in diagnostics]
    assert not dirty, f"benchmarks with diagnostics: {dirty}"


# ---------------------------------------------------------------------------
# CLI: exit codes and JSON output
# ---------------------------------------------------------------------------

def _write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text, encoding="utf-8")
    return str(path)


def test_cli_lint_clean_exits_zero(tmp_path, capsys):
    path = _write(tmp_path, "ok.imp",
                  "proc main(n) { while (n > 0) { tick(1); n = n - 1; } }\n")
    assert cli.main(["lint", path]) == EXIT_OK
    assert "clean" in capsys.readouterr().out


def test_cli_lint_error_exits_lint_code(tmp_path, capsys):
    path = _write(tmp_path, "bad.imp", "proc main(n) { x = q + 1; }\n")
    assert cli.main(["lint", path]) == EXIT_LINT
    out = capsys.readouterr().out
    assert "R101" in out


def test_cli_lint_parse_error_exits_parse_code(tmp_path, capsys):
    path = _write(tmp_path, "broken.imp", "proc main( {\n")
    assert cli.main(["lint", path]) == EXIT_PARSE_ERROR
    assert "R001" in capsys.readouterr().out


def test_cli_lint_strict_fails_on_warnings(tmp_path, capsys):
    source = "proc main(n, unused) { while (n > 0) { tick(1); n = n - 1; } }\n"
    path = _write(tmp_path, "warn.imp", source)
    assert cli.main(["lint", path]) == EXIT_OK
    capsys.readouterr()
    assert cli.main(["lint", "--strict", path]) == EXIT_LINT


def test_cli_lint_info_never_fails(tmp_path, capsys):
    path = _write(tmp_path, "info.imp", "proc main(n) { tick(n * n); }\n")
    assert cli.main(["lint", "--strict", path]) == EXIT_OK
    assert "R502" in capsys.readouterr().out


def test_cli_lint_json_schema(tmp_path, capsys):
    path = _write(tmp_path, "bad.imp", "proc main(n) { x = q + 1; }\n")
    code = cli.main(["lint", "--json", path])
    assert code == EXIT_LINT
    payload = json.loads(capsys.readouterr().out)
    assert set(payload) == {"schema", "strict", "targets"}
    assert payload["schema"] == 1
    target, = payload["targets"]
    assert set(target) == {"name", "status", "counts", "diagnostics"}
    assert target["status"] == "lint-error"
    assert target["counts"]["error"] == 1
    record, = [item for item in target["diagnostics"]
               if item["code"] == "R101"]
    assert set(record) == {"code", "severity", "line", "column",
                           "message", "hint", "procedure"}


def test_cli_lint_registry_selector_is_clean(capsys):
    assert cli.main(["lint", "--strict", "--quiet", "trader"]) == EXIT_OK


def test_cli_list_lint_column(capsys):
    assert cli.main(["list", "--lint"]) == EXIT_OK
    lines = capsys.readouterr().out.strip().splitlines()
    assert lines and all("\t" in line for line in lines)
    assert all(line.split("\t")[1] == "clean" for line in lines)


def test_exit_code_aggregation_prefers_parse_errors():
    assert exit_code_for_statuses(["ok", "lint-error"]) == EXIT_LINT
    assert exit_code_for_statuses(["lint-error", "parse-error"]) \
        == EXIT_PARSE_ERROR
    assert exit_code_for_statuses(["ok"]) == EXIT_OK


# ---------------------------------------------------------------------------
# The pre-flight gate: observe-only for accepted programs
# ---------------------------------------------------------------------------

def test_preflight_gate_is_byte_identical_for_accepted_programs():
    from repro.core.analyzer import analyze_program
    from repro.service.jobs import bound_payload, certificate_payload

    program = parse_program(
        "proc main(n) { while (n > 0) { tick(1); n = n - 1; } }")
    plain = analyze_program(program)
    gated = analyze_program(program, preflight=True)
    assert plain.success and gated.success
    assert json.dumps(bound_payload(plain.bound), sort_keys=True) \
        == json.dumps(bound_payload(gated.bound), sort_keys=True)

    def normalized(certificate):
        # ``node_id`` comes from a process-global counter advanced by every
        # AST construction, so ANY two in-process analyses differ on it
        # (including plain-vs-plain) -- byte-identity is about the
        # certificate *content*.  Ids also leak into ``origin`` strings as
        # ``loop-head@1956``, so scrub those too.
        payload = certificate_payload(certificate)
        for point in payload.get("points", []):
            point.pop("node_id", None)
        return re.sub(r"@\d+", "@N", json.dumps(payload, sort_keys=True))

    assert normalized(plain.certificate) == normalized(gated.certificate)
    assert plain.diagnostics == ()


def test_preflight_gate_rejects_error_severity():
    from repro.core.analyzer import analyze_program

    program = parse_program("proc main(n) { x = q + 1; tick(x); }")
    result = analyze_program(program, preflight=True)
    assert not result.success
    assert result.failure_kind == "lint-error"
    assert any(diag.code == "R101" for diag in result.diagnostics)
    assert result.lp_variables == 0   # the pipeline never ran


def test_preflight_diagnostics_flow_into_job_results():
    from repro.service.jobs import AnalysisJob, JobResult, run_job

    job = AnalysisJob.create(
        "gated", "proc main(n) { x = q + 1; tick(x); }",
        {"preflight": True})
    result = run_job(job)
    assert result.status == "lint-error"
    assert result.cacheable
    codes = [item["code"] for item in result.diagnostics]
    assert "R101" in codes   # param ``n`` is unused, so R103 rides along
    rebuilt = JobResult.from_record(result.to_record())
    assert rebuilt.diagnostics == result.diagnostics


def test_gateway_lint_op(tmp_path):
    from repro.service.gateway import GatewayClient, GatewayThread

    with GatewayThread(workers=0, store=None) as (host, port):
        with GatewayClient(host, port) as client:
            response = client.lint("proc main(n) { x = q + 1; }",
                                   name="demo")
            assert response["op"] == "lint"
            assert response["severity"] == "error"
            assert response["counts"]["error"] == 1
            codes = [item["code"] for item in response["diagnostics"]]
            assert "R101" in codes
            broken = client.lint("proc main( {")
            assert [item["code"] for item in broken["diagnostics"]] \
                == ["R001"]


def test_stdio_server_lint_op():
    from repro.service.server import AnalysisServer

    server = AnalysisServer()
    response = server.handle({
        "op": "lint",
        "source": "proc main(n) { cost = cost + n; tick(1); }",
        "options": {"resource_counter": "cost"},
    })
    assert response["op"] == "lint"
    assert response["severity"] is None
    assert response["diagnostics"] == []
