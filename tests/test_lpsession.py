"""Tests for the persistent LP solver sessions (``repro.core.lpsession``).

The correctness pin of the warm-starting PR, in the spirit of
``test_pipeline_incremental.py``: for every registry benchmark that
escalates degrees, bounds and serialised certificates must be
byte-identical across the SciPy reference backend, the ``auto``-resolved
backend, and a forced mid-run cold-fallback run -- and on the native
``highs`` backend the pipeline must actually report warm solves and basis
reuses.  Also covers the ``SolverBackend`` registry, the extras-assembly
cache, the ``--solver`` job-hash stamping and the CLI surface.
"""

import json

import numpy as np
import pytest

from repro.bench.registry import polynomial_benchmarks
from repro.core.analyzer import analyze_program
from repro.core.constraints import ConstraintSystem
from repro.core.lpsession import (AUTO, SOLVER_BACKENDS, ScipySession,
                                  _highspy, available_solver_backends,
                                  create_session, default_solver,
                                  force_cold_solves, resolve_solver_backend,
                                  solver_choices)
from repro.core.solver import AssembledSystem, IterativeMinimizer
from repro.lang import builder as B
from repro.service.jobs import AnalysisJob

from tests.test_pipeline_incremental import canonical_certificate

POLYNOMIAL = polynomial_benchmarks()

HAVE_HIGHSPY = _highspy() is not None

needs_highspy = pytest.mark.skipif(
    not HAVE_HIGHSPY, reason="optional highspy dependency not installed")


def nested_loop_program():
    return B.program(B.proc("main", ["n"],
        B.while_("n > 0",
            B.assign("n", "n - 1"),
            B.assign("m", "n"),
            B.while_("m > 0", B.assign("m", "m - 1"), B.tick(1)))))


def small_system():
    """min x + y  s.t.  x + y >= 2,  x - y == 0  (optimum x = y = 1)."""
    system = ConstraintSystem()
    x = system.new_var("x", nonneg=True)
    y = system.new_var("y", nonneg=True)
    system.add_ge(x + y - 2)
    system.add_eq(x - y)
    return system, x, y


# ---------------------------------------------------------------------------
# The backend registry
# ---------------------------------------------------------------------------

class TestSolverRegistry:
    def test_scipy_is_always_registered_and_available(self):
        assert "scipy" in SOLVER_BACKENDS
        assert "scipy" in available_solver_backends()

    def test_choices_cover_auto_and_backends(self):
        choices = solver_choices()
        assert AUTO in choices
        assert "scipy" in choices and "highs" in choices

    def test_auto_resolves_to_an_available_backend(self):
        resolved = resolve_solver_backend(None)
        assert resolved in available_solver_backends()
        assert resolve_solver_backend("auto") == resolved
        # auto prefers the native backend exactly when it is importable.
        assert resolved == ("highs" if HAVE_HIGHSPY else "scipy")

    def test_explicit_scipy_resolves(self):
        assert resolve_solver_backend("scipy") == "scipy"

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown LP solver"):
            resolve_solver_backend("simplex9000")

    @pytest.mark.skipif(HAVE_HIGHSPY, reason="highspy installed here")
    def test_unavailable_backend_raises(self):
        with pytest.raises(ValueError, match="not available"):
            resolve_solver_backend("highs")

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SOLVER", raising=False)
        assert default_solver() == AUTO
        monkeypatch.setenv("REPRO_SOLVER", "scipy")
        assert default_solver() == "scipy"
        assert resolve_solver_backend(None) == "scipy"

    def test_create_session_returns_named_backend(self):
        system, _, _ = small_system()
        session = create_session("scipy", AssembledSystem(system))
        assert isinstance(session, ScipySession)
        assert session.name == "scipy"


# ---------------------------------------------------------------------------
# Session behaviour on a tiny LP
# ---------------------------------------------------------------------------

def _session_for(name):
    system, x, y = small_system()
    return create_session(name, AssembledSystem(system)), x, y


def session_names():
    return available_solver_backends()


@pytest.mark.parametrize("backend", session_names())
class TestSessionProtocol:
    def test_solve_finds_the_optimum(self, backend):
        session, x, y = _session_for(backend)
        values = session.solve(x + y)
        assert values is not None
        assert np.allclose(values, [1.0, 1.0], atol=1e-6)

    def test_stage_rows_constrain_later_solves(self, backend):
        session, x, y = _session_for(backend)
        values = session.solve(x + y)
        assert values is not None
        session.fix_objective(x + y, 2.0 + 1e-7)
        # Maximising x (minimising -x) under the fixed sum keeps x + y <= 2.
        values = session.solve(x * -1)
        assert values is not None
        assert values[0] + values[1] <= 2.0 + 1e-5
        assert session.stats.stage_rows_added == 1
        session.clear_stage_rows()
        values = session.solve(x * -1)
        # Unbounded after the fix row is gone: either reported as
        # infeasible/unbounded (None) or a huge x -- both prove the row left.
        assert values is None or values[0] > 10.0

    def test_infeasible_reports_none(self, backend):
        system = ConstraintSystem()
        x = system.new_var("x", nonneg=True)
        system.add_ge(-x - 1)          # -x - 1 >= 0, impossible for x >= 0
        session = create_session(backend, AssembledSystem(system))
        assert session.solve(x) is None

    def test_forced_cold_routes_through_reference_path(self, backend):
        session, x, y = _session_for(backend)
        with force_cold_solves():
            values = session.solve(x + y)
        assert values is not None
        assert np.allclose(values, [1.0, 1.0], atol=1e-6)
        assert session.stats.cold_solves == 1
        assert session.stats.warm_solves == 0


class TestScipySessionIsTheReferencePath:
    def test_matches_direct_assembled_solve(self):
        system, x, y = small_system()
        assembled = AssembledSystem(system)
        session = ScipySession(assembled)
        direct = assembled.solve(x + y)
        via_session = session.solve(x + y)
        assert np.array_equal(direct, via_session)
        assert session.stats.cold_solves == 1

    def test_minimizer_uses_transient_scipy_session(self):
        system, x, y = small_system()
        solution = IterativeMinimizer(system).solve([x + y])
        assert solution is not None
        assert float(solution.objective_values[0]) == pytest.approx(2.0)


# ---------------------------------------------------------------------------
# The extras-assembly cache (satellite: no full re-stack per stage)
# ---------------------------------------------------------------------------

class TestExtrasCache:
    def _dense(self, matrices):
        a_ub, b_ub, _, _, _ = matrices
        return (a_ub.toarray() if a_ub is not None else None,
                b_ub.copy() if b_ub is not None else None)

    def test_incremental_extras_equal_fresh_assembly(self):
        system, x, y = small_system()
        assembled = AssembledSystem(system)
        stage_rows = []
        for bound in (2.0, 1.5, 1.25):
            stage_rows.append((x + y, bound))
            cached_a, cached_b = self._dense(assembled.matrices(stage_rows))
            fresh_a, fresh_b = self._dense(
                AssembledSystem(system).matrices(list(stage_rows)))
            assert np.array_equal(cached_a, fresh_a)
            assert np.array_equal(cached_b, fresh_b)

    def test_cache_appends_only_the_suffix(self):
        system, x, y = small_system()
        assembled = AssembledSystem(system)
        rows = [(x + y, 2.0)]
        assembled.matrices(rows)
        first_block = assembled._extras_cache[1]
        rows.append((x - y, 0.5))
        assembled.matrices(rows)
        prefix, block, rhs = assembled._extras_cache
        assert len(prefix) == 2 and block.shape[0] == 2
        # The prefix row's CSR data was carried over, not re-assembled.
        assert np.array_equal(block.toarray()[0], first_block.toarray()[0])

    def test_changed_prefix_rebuilds(self):
        system, x, y = small_system()
        assembled = AssembledSystem(system)
        assembled.matrices([(x + y, 2.0)])
        a, b = self._dense(assembled.matrices([(x + y, 3.0)]))
        fresh_a, fresh_b = self._dense(
            AssembledSystem(system).matrices([(x + y, 3.0)]))
        assert np.array_equal(a, fresh_a)
        assert np.array_equal(b, fresh_b)

    def test_fresh_stage_list_resets(self):
        system, x, y = small_system()
        assembled = AssembledSystem(system)
        assembled.matrices([(x + y, 2.0), (x - y, 0.5)])
        a, b = self._dense(assembled.matrices([(y - x, 0.25)]))
        fresh_a, fresh_b = self._dense(
            AssembledSystem(system).matrices([(y - x, 0.25)]))
        assert np.array_equal(a, fresh_a)
        assert np.array_equal(b, fresh_b)


# ---------------------------------------------------------------------------
# Registry-wide warm/cold identity (the acceptance pin)
# ---------------------------------------------------------------------------

def _escalating_options(options):
    target = int(options.get("max_degree", 1))
    return {**options, "max_degree": 1, "auto_degree": True,
            "degree_limit": target}, target


class TestWarmColdIdentity:
    """Bounds and certificates identical across backends and fallbacks."""

    @pytest.mark.parametrize("bench", POLYNOMIAL, ids=lambda b: b.name)
    def test_registry_identity_across_solvers(self, bench):
        options, target = _escalating_options(dict(bench.analyzer_options))
        program = bench.build()
        reference = analyze_program(program, **{**options, "solver": "scipy"})
        if reference.degree < target:
            pytest.skip(f"{bench.name} already has a degree-1 bound")
        assert reference.success, f"{bench.name}: {reference.message}"
        assert reference.stats.solver_backend == "scipy"
        assert reference.stats.attempted_degrees == [1, target]

        # The auto-resolved backend (highs where installed, scipy here).
        auto = analyze_program(program, **{**options, "solver": "auto"})
        assert auto.success
        assert auto.bound.pretty() == reference.bound.pretty()
        assert canonical_certificate(auto.certificate) \
            == canonical_certificate(reference.certificate)

        # A forced mid-run cold fallback: every warm solve degrades to the
        # reference path, which must change nothing.
        with force_cold_solves():
            fallback = analyze_program(program, **{**options,
                                                   "solver": "auto"})
        assert fallback.success
        assert fallback.bound.pretty() == reference.bound.pretty()
        assert canonical_certificate(fallback.certificate) \
            == canonical_certificate(reference.certificate)
        assert fallback.stats.warm_solves == 0
        assert fallback.stats.cold_solves > 0

    def test_scipy_counters(self):
        program = nested_loop_program()
        result = analyze_program(program, max_degree=1, auto_degree=True,
                                 degree_limit=2, solver="scipy")
        assert result.success and result.degree == 2
        stats = result.stats
        assert stats.solver_backend == "scipy"
        assert stats.warm_solves == 0 and stats.basis_reuses == 0
        assert stats.cold_solves > 0
        stage_dicts = [stage.to_dict() for stage in stats.stages]
        for entry in stage_dicts:
            for key in ("warm_solves", "cold_solves", "basis_reuses",
                        "solver_fallbacks"):
                assert key in entry
        assert sum(entry["cold_solves"] for entry in stage_dicts) \
            == stats.cold_solves

    @needs_highspy
    @pytest.mark.parametrize("bench", POLYNOMIAL, ids=lambda b: b.name)
    def test_registry_identity_highs_backend(self, bench):
        options, target = _escalating_options(dict(bench.analyzer_options))
        program = bench.build()
        reference = analyze_program(program, **{**options, "solver": "scipy"})
        if reference.degree < target:
            pytest.skip(f"{bench.name} already has a degree-1 bound")
        warm = analyze_program(program, **{**options, "solver": "highs"})
        assert warm.success
        assert warm.bound.pretty() == reference.bound.pretty()
        assert canonical_certificate(warm.certificate) \
            == canonical_certificate(reference.certificate)
        assert warm.stats.solver_backend == "highs"

    @needs_highspy
    def test_highs_reports_warm_solves_and_basis_reuses(self):
        program = nested_loop_program()
        result = analyze_program(program, max_degree=1, auto_degree=True,
                                 degree_limit=2, solver="highs")
        assert result.success and result.degree == 2
        stats = result.stats
        assert stats.solver_backend == "highs"
        assert stats.warm_solves > 0
        assert stats.basis_reuses > 0

    def test_unknown_solver_is_a_structured_failure(self):
        program = nested_loop_program()
        result = analyze_program(program, solver="simplex9000")
        assert not result.success
        assert result.failure_kind == "analysis-error"
        assert "unknown LP solver" in result.message

    @pytest.mark.skipif(HAVE_HIGHSPY, reason="highspy installed here")
    def test_unavailable_solver_is_a_structured_failure(self):
        program = nested_loop_program()
        result = analyze_program(program, solver="highs")
        assert not result.success
        assert result.failure_kind == "analysis-error"
        assert "not available" in result.message


# ---------------------------------------------------------------------------
# Job stamping (the --solver option participates in the cache key)
# ---------------------------------------------------------------------------

class TestJobStamping:
    SOURCE = "proc main(x) { assume(x >= 1); while (x > 0) { x = x - 1; tick(1); } }"

    def test_default_selector_is_stamped(self, monkeypatch):
        monkeypatch.delenv("REPRO_SOLVER", raising=False)
        job = AnalysisJob.create("toy", self.SOURCE)
        assert job.options_dict["solver"] == AUTO

    def test_env_default_is_stamped(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVER", "scipy")
        job = AnalysisJob.create("toy", self.SOURCE)
        assert job.options_dict["solver"] == "scipy"

    def test_explicit_option_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVER", "scipy")
        job = AnalysisJob.create("toy", self.SOURCE, {"solver": "auto"})
        assert job.options_dict["solver"] == AUTO

    def test_selector_changes_the_hash(self):
        auto = AnalysisJob.create("toy", self.SOURCE, {"solver": "auto"})
        scipy_job = AnalysisJob.create("toy", self.SOURCE,
                                       {"solver": "scipy"})
        assert auto.job_hash != scipy_job.job_hash

    def test_selector_not_resolution_is_hashed(self, monkeypatch):
        # Two processes with different *available* backends agree on the
        # hash of an ``auto`` job: the selector is stamped, never the
        # machine-dependent resolution.
        monkeypatch.delenv("REPRO_SOLVER", raising=False)
        job = AnalysisJob.create("toy", self.SOURCE)
        assert job.options_dict["solver"] == AUTO
        assert json.dumps(job.options_dict, sort_keys=True, default=str) \
            == json.dumps(AnalysisJob.create("toy", self.SOURCE).options_dict,
                          sort_keys=True, default=str)

    def test_job_from_benchmark_passthrough(self):
        from repro.bench.registry import get_benchmark
        from repro.service.jobs import job_from_benchmark

        job = job_from_benchmark(get_benchmark("rdwalk"), solver="scipy")
        assert job.options_dict["solver"] == "scipy"

    def test_run_job_accepts_the_stamped_option(self):
        from repro.service.jobs import run_job

        job = AnalysisJob.create("toy", self.SOURCE, {"solver": "scipy"})
        result = run_job(job)
        assert result.status == "ok"
        assert result.pipeline.get("solver") == "scipy"


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------

class TestCliSolverFlag:
    def _write_program(self, tmp_path):
        path = tmp_path / "toy.imp"
        path.write_text(
            "proc main(x) { assume(x >= 1); "
            "while (x > 0) { x = x - 1; tick(1); } }\n",
            encoding="utf-8")
        return str(path)

    def test_analyze_accepts_scipy(self, tmp_path, capsys):
        from repro import cli

        code = cli.main(["analyze", self._write_program(tmp_path),
                         "--solver", "scipy"])
        assert code == 0
        assert "expected cost bound" in capsys.readouterr().out

    def test_analyze_rejects_unknown(self, tmp_path):
        from repro import cli

        with pytest.raises(SystemExit) as excinfo:
            cli.main(["analyze", self._write_program(tmp_path),
                      "--solver", "simplex9000"])
        assert excinfo.value.code == 2
