"""Reproduction of the paper's headline examples (experiments E7/E8 in DESIGN.md).

Every test here corresponds to a bound that is *printed in the paper*
(Sections 1 and 3, Figures 4/5, Appendix G); we check that the analyzer
derives a bound of the same shape and, where the derivation is tight, the
same constants.
"""

from fractions import Fraction

import pytest

from repro import analyze_program
from repro.bench.registry import get_benchmark
from repro.semantics.sampler import estimate_expected_cost


def analyzed(name):
    benchmark = get_benchmark(name)
    result = analyze_program(benchmark.build(), **benchmark.analyzer_options)
    assert result.success, f"{name}: {result.message}"
    return benchmark, result


class TestSectionOneClaims:
    def test_trader_cost_bound_shape(self):
        """Sec. 1: expected final `cost` of trader is quadratic in s - smin."""
        _, result = analyzed("trader")
        assert result.bound.degree() == 2
        # Paper's bound at (s, smin) = (200, 100) is
        # 5*100^2 + 10*100*100 + 5*100 = 150500; ours must be comparable
        # (same order of magnitude) and must dominate the measured cost.
        value = float(result.bound.evaluate({"s": 200, "smin": 100}))
        assert 100_000 <= value <= 350_000

    def test_trader_iteration_bound(self):
        """Sec. 1: expected number of loop iterations is 2*max(0, s - smin)."""
        from repro.lang import builder as B
        program = B.program(B.proc("main", ["smin", "s"],
            B.assume("smin >= 0"),
            B.while_("s > smin",
                B.prob("1/4", B.assign("s", "s + 1"), B.assign("s", "s - 1")),
                B.tick(1))))
        result = analyze_program(program)
        assert result.success
        assert result.bound.evaluate({"s": 150, "smin": 100}) == 100


class TestSectionThreeDerivations:
    def test_simple_random_walk_is_2x(self, simple_random_walk):
        result = analyze_program(simple_random_walk)
        assert result.bound.evaluate({"x": 37}) == 74

    def test_rdwalk_figure4(self):
        _, result = analyzed("rdwalk")
        value = float(result.bound.evaluate({"x": 0, "n": 100}))
        assert 200 <= value <= 202     # paper: 2|[x, n+1]| = 202

    def test_rdspeed_figure4(self):
        _, result = analyzed("rdspeed")
        # Paper bound: 2|[y, m]| + 2/3 |[x, n]|.
        value = float(result.bound.evaluate({"x": 0, "n": 90, "y": 0, "m": 30}))
        assert value == pytest.approx(2 * 30 + Fraction(2, 3) * 90, rel=0.15)

    def test_race_figure2(self):
        _, result = analyzed("race")
        assert result.bound.evaluate({"h": 0, "t": 30}) == Fraction(2, 3) * 39

    def test_prseq_figure5(self):
        _, result = analyzed("prseq")
        # Paper: 1.65|[y,z]| + 0.15|[0,y]| (+ small constants in our derivation).
        value = float(result.bound.evaluate({"y": 0, "z": 200}))
        paper = 1.65 * 200
        assert value == pytest.approx(paper, rel=0.05)

    def test_prnes_figure5(self):
        _, result = analyzed("prnes")
        value = float(result.bound.evaluate({"n": -100, "y": 300}))
        paper = 68.4795 * 100 + 0.052631 * 300
        assert value == pytest.approx(paper, rel=0.05)

    def test_miner_appendix(self):
        _, result = analyzed("miner")
        assert result.bound.evaluate({"n": 40}) == Fraction(15, 2) * 40

    def test_c4b_t13_appendix(self):
        _, result = analyzed("C4B_t13")
        assert result.bound.evaluate({"x": 80, "y": 20}) == Fraction(5, 4) * 80 + 20

    def test_rdbub_appendix(self):
        _, result = analyzed("rdbub")
        # Paper: 3|[0,n]|^2.
        value = float(result.bound.evaluate({"n": 30}))
        assert value == pytest.approx(3 * 30 * 30, rel=0.12)


class TestBoundsDominateSimulation:
    """The paper's evaluation criterion: inferred bound >= measured expectation."""

    @pytest.mark.parametrize("name,state", [
        ("rdwalk", {"x": 0, "n": 60}),
        ("ber", {"x": 0, "n": 60}),
        ("race", {"h": 0, "t": 40}),
        ("miner", {"n": 40}),
        ("linear01", {"x": 60}),
        ("C4B_t13", {"x": 40, "y": 20}),
    ])
    def test_linear_benchmarks(self, name, state):
        benchmark, result = analyzed(name)
        stats = estimate_expected_cost(benchmark.build(), state, runs=300, seed=7)
        assert float(result.bound.evaluate(state)) + 1e-6 >= stats.mean - 3 * stats.standard_error()

    @pytest.mark.parametrize("name,state", [
        ("pol04", {"x": 25}),
        ("rdbub", {"n": 25}),
    ])
    def test_polynomial_benchmarks(self, name, state):
        benchmark, result = analyzed(name)
        stats = estimate_expected_cost(benchmark.build(), state, runs=200, seed=11)
        assert float(result.bound.evaluate(state)) + 1e-6 >= stats.mean - 3 * stats.standard_error()
