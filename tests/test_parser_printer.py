"""Tests for the lexer, parser and pretty printer (including round trips)."""

from fractions import Fraction

import pytest

from repro.lang import ast
from repro.lang.errors import ParseError
from repro.lang.lexer import tokenize
from repro.lang.parser import parse_command, parse_expr, parse_program
from repro.lang.printer import command_to_source, program_to_source

TRADER_SOURCE = """
// The stock trader of Fig. 1.
proc main(smin, s) {
    assume(smin >= 0);
    while (s > smin) {
        prob(1/4) { s = s + 1; } else { s = s - 1; }
        call trade;
    }
}

proc trade() {
    nShares = unif(0, 10);
    while (nShares > 0) {
        nShares = nShares - 1;
        tick(s);
    }
}
"""


class TestLexer:
    def test_tokenizes_symbols_and_idents(self):
        kinds = [tok.kind for tok in tokenize("x = x + 1;")]
        assert kinds == ["ident", "symbol", "ident", "symbol", "number", "symbol", "eof"]

    def test_line_comments_skipped(self):
        tokens = tokenize("x = 1; // comment\ny = 2;")
        assert all(tok.value != "comment" for tok in tokens)

    def test_block_comments_skipped(self):
        tokens = tokenize("/* a\nb */ x = 1;")
        assert tokens[0].value == "x"

    def test_unterminated_block_comment(self):
        with pytest.raises(ParseError):
            tokenize("/* oops")

    def test_unknown_character(self):
        with pytest.raises(ParseError):
            tokenize("x = $;")

    def test_line_numbers(self):
        tokens = tokenize("x = 1;\ny = 2;")
        y_token = [tok for tok in tokens if tok.value == "y"][0]
        assert y_token.line == 2


class TestExpressionParsing:
    def test_precedence(self):
        expr = parse_expr("1 + 2 * x")
        lowered = ast.expr_to_linexpr(expr)
        assert lowered.coefficient("x") == 2
        assert lowered.const_term == 1

    def test_comparison(self):
        expr = parse_expr("x + 1 <= n")
        assert isinstance(expr, ast.BinOp) and expr.op == "<="

    def test_boolean_connectives(self):
        expr = parse_expr("x > 0 && y > 0 || z > 0")
        assert isinstance(expr, ast.BinOp) and expr.op == "or"

    def test_star(self):
        assert isinstance(parse_expr("*"), ast.Star)

    def test_unary_minus(self):
        expr = parse_expr("-x + 3")
        lowered = ast.expr_to_linexpr(expr)
        assert lowered.coefficient("x") == -1

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_expr("x + 1 )")


class TestStatementParsing:
    def test_assignment(self):
        command = parse_command("x = x + 1;")
        assert isinstance(command, ast.Assign)

    def test_sampling_assignment(self):
        command = parse_command("x = x + unif(0, 10);")
        assert isinstance(command, ast.Sample)
        assert command.op == "+"
        assert command.distribution.max_value() == 10

    def test_plain_distribution_assignment(self):
        command = parse_command("x = unif(0, 3);")
        assert isinstance(command, ast.Sample)
        assert isinstance(command.expr, ast.Const)

    def test_bernoulli_with_fraction(self):
        command = parse_command("x = x + ber(1/3);")
        assert isinstance(command, ast.Sample)

    def test_two_distributions_rejected(self):
        with pytest.raises(ParseError):
            parse_command("x = unif(0,1) + unif(0,2);")

    def test_prob_statement(self):
        command = parse_command("prob(3/4) { x = x - 1; } else { x = x + 1; }")
        assert isinstance(command, ast.ProbChoice)
        assert command.probability == Fraction(3, 4)

    def test_nondet_if(self):
        command = parse_command("if (*) { skip; } else { abort; }")
        assert isinstance(command, ast.NonDetChoice)

    def test_if_else_if(self):
        command = parse_command(
            "if (x > 0) { tick(1); } else if (x < 0) { tick(2); } else { skip; }")
        assert isinstance(command, ast.If)
        assert isinstance(command.else_branch, ast.If)

    def test_while_with_star_conjunction(self):
        command = parse_command("while (y >= 100 && *) { y = y - 100; tick(5); }")
        assert isinstance(command, ast.While)
        assert isinstance(command.condition, ast.BinOp)

    def test_tick_expression(self):
        command = parse_command("tick(s);")
        assert isinstance(command, ast.Tick) and not command.is_constant

    def test_call(self):
        command = parse_command("call trade;")
        assert isinstance(command, ast.Call) and command.procedure == "trade"

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_command("x = 1")


class TestProgramParsing:
    def test_trader_program(self):
        program = parse_program(TRADER_SOURCE)
        assert set(program.procedures) == {"main", "trade"}
        assert program.main == "main"
        assert program.main_procedure.params == ("smin", "s")

    def test_explicit_main_selection(self):
        program = parse_program(TRADER_SOURCE, main="trade")
        assert program.main == "trade"

    def test_local_declarations(self):
        program = parse_program("proc main(x) { local t, u; t = x; tick(1); }")
        assert program.main_procedure.locals == ("t", "u")

    def test_empty_program_rejected(self):
        with pytest.raises(ParseError):
            parse_program("   ")


class TestPrinterRoundTrip:
    def test_trader_round_trip(self):
        program = parse_program(TRADER_SOURCE)
        printed = program_to_source(program)
        reparsed = parse_program(printed)
        assert program_to_source(reparsed) == printed

    def test_command_round_trip(self):
        source = "prob(1/2) { x = x + unif(0, 10); } else { skip; }"
        command = parse_command(source)
        printed = command_to_source(command)
        reparsed = parse_command(printed)
        assert command_to_source(reparsed) == printed

    @pytest.mark.parametrize("snippet", [
        "skip;",
        "abort;",
        "assert(x > 0);",
        "assume(x >= 0 && y >= 0);",
        "tick(3);",
        "x = unif(0, 5);",
        "if (x == 0) { tick(1); }",
        "while (x > 0) { x = x - 1; tick(1); }",
        "if (*) { x = 1; } else { x = 2; }",
        "call p;",
    ])
    def test_snippet_round_trips(self, snippet):
        command = parse_command(snippet)
        printed = command_to_source(command)
        assert command_to_source(parse_command(printed)) == printed

    def test_fractional_tick_round_trips_exactly(self):
        """``tick(1/2)`` is the exact rational 1/2, not floor division.

        Regression test: the printer renders fractional tick amounts as
        ``tick(n/d)``; the parser must fold that literal back into a
        constant tick (``/`` means floor division in general expressions),
        otherwise benchmarks with fractional costs stop analysing after a
        print/parse round trip through the service layer.
        """
        from fractions import Fraction

        command = parse_command("tick(1/2);")
        assert command.is_constant
        assert command.amount == Fraction(1, 2)
        printed = command_to_source(command)
        assert printed.strip() == "tick(1/2);"
        reparsed = parse_command(printed)
        assert reparsed.is_constant and reparsed.amount == Fraction(1, 2)
