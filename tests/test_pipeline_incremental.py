"""Tests for the incremental degree-escalation pipeline.

Covers the identity guarantee (an escalated 1->2 analysis is byte-identical
to a cold ``max_degree=2`` run), the per-stage statistics, the append-only
extension protocol of the constraint system, the in-place growth of the LP
assembly, and the per-attempt/total timing split.
"""

import json
import re

import pytest

from repro.bench.registry import polynomial_benchmarks
from repro.core.analyzer import analyze_program
from repro.core.constraints import AffExpr, ConstraintSystem
from repro.core.solver import AssembledSystem
from repro.lang import builder as B
from repro.service.jobs import AnalysisJob, certificate_payload

POLYNOMIAL = polynomial_benchmarks()


def nested_loop_program():
    return B.program(B.proc("main", ["n"],
        B.while_("n > 0",
            B.assign("n", "n - 1"),
            B.assign("m", "n"),
            B.while_("m > 0", B.assign("m", "m - 1"), B.tick(1)))))


def canonical_certificate(certificate):
    """The certificate payload with AST node ids renumbered canonically.

    The front end copies the program per analysis run (inlining), so node
    ids are gensym'd per run; everything else must match byte for byte.
    """
    mapping = {}

    def renumber(node_id):
        if node_id not in mapping:
            mapping[node_id] = len(mapping)
        return mapping[node_id]

    payload = json.loads(json.dumps(certificate_payload(certificate)))
    for point in payload["points"]:
        point["node_id"] = renumber(point["node_id"])
    for weakening in payload["weakenings"]:
        weakening["origin"] = re.sub(
            r"@(\d+)",
            lambda m: f"@{mapping.get(int(m.group(1)), m.group(1))}",
            weakening["origin"])
    return json.dumps(payload, sort_keys=True)


class TestEscalationIdentity:
    """Escalated 1->2 runs must equal cold degree-2 runs exactly."""

    @pytest.mark.parametrize("bench", POLYNOMIAL, ids=lambda b: b.name)
    def test_registry_escalation_matches_cold_run(self, bench):
        options = dict(bench.analyzer_options)
        target = int(options.get("max_degree", 1))
        assert target >= 2, "polynomial benchmarks are degree >= 2"
        # One shared AST: node ids then agree between the two runs, so the
        # comparison really is byte-for-byte.
        program = bench.build()
        cold = analyze_program(program, **options)
        escalated = analyze_program(program, **{
            **options, "max_degree": 1, "auto_degree": True,
            "degree_limit": target})
        assert cold.success, f"{bench.name}: {cold.message}"
        if escalated.degree < target:
            pytest.skip(f"{bench.name} already has a degree-1 bound")
        assert escalated.success, f"{bench.name}: {escalated.message}"
        assert escalated.bound.pretty() == cold.bound.pretty()
        assert canonical_certificate(escalated.certificate) \
            == canonical_certificate(cold.certificate)
        # The escalation measurably reused the degree-1 system.
        ratio = escalated.stats.escalation_reuse_ratio
        assert ratio is not None and ratio > 0
        assert escalated.stats.attempted_degrees == [1, target]
        # Cold runs construct every stage but only solve the target degree.
        assert cold.stats.attempted_degrees == [target]
        assert [stage.degree for stage in cold.stats.stages] \
            == list(range(1, target + 1))


class TestPipelineStats:
    def test_stage_deltas_match_constraint_system_counts(self):
        result = analyze_program(nested_loop_program(), max_degree=1,
                                 auto_degree=True, degree_limit=2)
        assert result.success and result.degree == 2
        stats = result.stats
        assert stats.attempted_degrees == [1, 2]
        assert [stage.kind for stage in stats.stages] == ["base", "extend"]
        base, extend = stats.stages
        # The per-stage deltas must add up to the final system exactly.
        assert base.variables_added + extend.variables_added \
            == extend.variables_total == result.lp_variables
        assert base.constraints_added + extend.constraints_added \
            == extend.constraints_total == result.lp_constraints
        # Every base row was either kept verbatim or extended, never both.
        assert extend.constraints_reused + extend.constraints_extended \
            == base.constraints_total
        assert extend.constraints_reused >= 0
        assert base.reuse_ratio() is None
        assert extend.reuse_ratio() == stats.escalation_reuse_ratio > 0
        # Both degrees were solved: degree 1 infeasible, degree 2 feasible.
        assert base.solved and base.feasible is False
        assert extend.solved and extend.feasible is True
        payload = stats.to_dict()
        assert payload["attempted_degrees"] == [1, 2]
        assert payload["stages"][1]["reuse_ratio"] > 0

    def test_single_degree_run_has_no_escalation_ratio(self):
        program = B.program(B.proc("main", ["n"],
            B.while_("n > 0", B.assign("n", "n - 1"), B.tick(1))))
        result = analyze_program(program, max_degree=1, auto_degree=False)
        assert result.success
        assert result.stats.attempted_degrees == [1]
        assert result.stats.escalation_reuse_ratio is None


class TestTimingSplit:
    def test_attempt_and_total_times_are_separate(self):
        result = analyze_program(nested_loop_program(), max_degree=1,
                                 auto_degree=True, degree_limit=2)
        assert result.success and result.degree == 2
        # time_seconds is the successful attempt only; total_seconds covers
        # preparation, construction and the failed degree-1 attempt too.
        assert 0 < result.time_seconds < result.total_seconds
        stats = result.stats
        attempts = sum(stage.solve_seconds for stage in stats.stages)
        overhead = stats.prepare_seconds + stats.build_seconds_total()
        assert result.total_seconds >= attempts + overhead

    def test_failed_attempts_report_their_own_wall(self):
        program = B.program(B.proc("main", ["n"],
            B.while_("n > 0",
                B.assign("n", "n - 1"),
                B.assign("m", "n"),
                B.while_("m > 0", B.assign("m", "m - 1"), B.tick(1)))))
        result = analyze_program(program, max_degree=1, auto_degree=False)
        assert not result.success
        assert result.failure_kind == "no-bound"
        assert result.time_seconds <= result.total_seconds


class TestExtensionProtocol:
    def build_system(self):
        system = ConstraintSystem()
        x = system.new_var("x", nonneg=True)
        y = system.new_var("y")
        eq_index = system.add_eq(x + y - 3, origin="eq0")
        ge_index = system.add_ge(x - y + 1, origin="ge0")
        return system, x, y, eq_index, ge_index

    def test_extended_assembly_equals_fresh_assembly(self):
        system, x, y, eq_index, ge_index = self.build_system()
        assembled = AssembledSystem(system)
        system.begin_extension()
        z = system.new_var("z", nonneg=True)
        w = system.new_var("w", nonneg=True)
        system.extend_constraint(eq_index, z * 2)
        system.extend_constraint(ge_index, w * -1)
        system.add_eq(z - w * 3 + 1, origin="new-eq")
        system.add_ge(x + z - 7, origin="new-ge")
        extension = system.end_extension()
        assert extension.constraints_extended == 2
        assembled.extend(extension)
        fresh = AssembledSystem(system)
        assert (assembled.a_eq.toarray() == fresh.a_eq.toarray()).all()
        assert (assembled.a_ub_base.toarray()
                == fresh.a_ub_base.toarray()).all()
        assert (assembled.b_eq == fresh.b_eq).all()
        assert (assembled.b_ub_base == fresh.b_ub_base).all()
        assert assembled.bounds == fresh.bounds
        assert assembled.num_vars == fresh.num_vars == 4

    def test_extension_delta_must_not_touch_old_columns(self):
        system, x, y, eq_index, _ = self.build_system()
        system.begin_extension()
        system.new_var("z", nonneg=True)
        with pytest.raises(ValueError, match="pre-extension variable"):
            system.extend_constraint(eq_index, x * 2)

    def test_extension_delta_must_be_constant_free(self):
        system, _x, _y, eq_index, _ = self.build_system()
        system.begin_extension()
        z = system.new_var("z", nonneg=True)
        with pytest.raises(ValueError, match="constant part"):
            system.extend_constraint(eq_index, z + 1)

    def test_extend_outside_round_is_rejected(self):
        system, _x, _y, eq_index, _ = self.build_system()
        with pytest.raises(RuntimeError):
            system.extend_constraint(eq_index, AffExpr.zero())

    def test_stale_assembly_is_rejected(self):
        system, *_ = self.build_system()
        assembled = AssembledSystem(system)
        system.begin_extension()
        system.new_var("z", nonneg=True)
        system.end_extension()
        from repro.core.solver import IterativeMinimizer
        with pytest.raises(ValueError, match="stale"):
            IterativeMinimizer(system).solve([], assembled=assembled)


class TestDegreeLimitOption:
    def test_degree_limit_is_honoured(self):
        result = analyze_program(nested_loop_program(), max_degree=1,
                                 auto_degree=True, degree_limit=1)
        assert not result.success
        assert result.stats.attempted_degrees == [1]

    def test_degree_limit_changes_job_hash(self):
        source = "proc main(n) { while (n > 0) { n = n - 1; tick(1); } }"
        default = AnalysisJob.create("p", source, {})
        limited = AnalysisJob.create("p", source, {"degree_limit": 3})
        assert default.job_hash != limited.job_hash
