"""Unit and property tests for interval atoms, monomials and polynomials."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.utils.linear import LinExpr
from repro.utils.polynomials import IntervalAtom, Monomial, Polynomial, atom_product


def diff(coeffs, const=0):
    return LinExpr(coeffs, const)


X_MINUS_Y = diff({"x": 1, "y": -1})
X = diff({"x": 1})
Y = diff({"y": 1})


class TestIntervalAtom:
    def test_evaluate_clamps_at_zero(self):
        atom = IntervalAtom(X_MINUS_Y)
        assert atom.evaluate({"x": 3, "y": 5}) == 0
        assert atom.evaluate({"x": 5, "y": 3}) == 2

    def test_constant_atom_rejected(self):
        with pytest.raises(ValueError):
            IntervalAtom(diff({}, 3))

    def test_interval_rendering(self):
        atom = IntervalAtom(diff({"n": 1, "x": -1}, 9))
        assert str(atom) == "|[x, n + 9]|"

    def test_atom_product_scale(self):
        scale, atom = atom_product(diff({"x": 2}))
        assert scale == 2
        assert atom.diff == X

    def test_atom_product_constant(self):
        value, atom = atom_product(diff({}, -3))
        assert atom is None and value == 0
        value, atom = atom_product(diff({}, 3))
        assert atom is None and value == 3


class TestMonomial:
    def test_one(self):
        assert Monomial.one().is_constant()
        assert Monomial.one().degree() == 0
        assert Monomial.one().evaluate({}) == 1

    def test_degree_counts_powers(self):
        atom = IntervalAtom(X)
        assert Monomial({atom: 2}).degree() == 2

    def test_multiply_merges_factors(self):
        a = Monomial.of_atom(IntervalAtom(X))
        b = Monomial.of_atom(IntervalAtom(Y))
        product = a.multiply(b)
        assert product.degree() == 2
        assert set(product.atoms()) == {IntervalAtom(X), IntervalAtom(Y)}

    def test_evaluate_product(self):
        m = Monomial([IntervalAtom(X), IntervalAtom(Y)])
        assert m.evaluate({"x": 3, "y": 4}) == 12
        assert m.evaluate({"x": -3, "y": 4}) == 0

    def test_substitute_shifts_interval(self):
        m = Monomial.of_atom(IntervalAtom(X))
        coeff, result = m.substitute("x", diff({"x": 1}, -1))
        assert coeff == 1
        assert str(result) == "|[1, x]|"

    def test_substitute_to_constant(self):
        m = Monomial.of_atom(IntervalAtom(X))
        coeff, result = m.substitute("x", diff({}, 5))
        assert coeff == 5 and result.is_constant()

    def test_substitute_negative_constant_gives_zero(self):
        m = Monomial.of_atom(IntervalAtom(X))
        coeff, _ = m.substitute("x", diff({}, -5))
        assert coeff == 0

    def test_variables(self):
        m = Monomial([IntervalAtom(X_MINUS_Y)])
        assert m.variables() == ("x", "y")

    def test_hashable(self):
        assert Monomial.of_atom(IntervalAtom(X)) == Monomial.of_atom(IntervalAtom(X))
        assert len({Monomial.of_atom(IntervalAtom(X)),
                    Monomial.of_atom(IntervalAtom(X))}) == 1


class TestPolynomial:
    def test_zero(self):
        assert Polynomial.zero().is_zero()
        assert Polynomial.zero().evaluate({}) == 0

    def test_constant(self):
        assert Polynomial.constant(5).evaluate({}) == 5

    def test_interval_constructor(self):
        poly = Polynomial.interval(diff({"n": 1, "x": -1}), 2)
        assert poly.evaluate({"x": 1, "n": 5}) == 8
        assert poly.evaluate({"x": 6, "n": 5}) == 0

    def test_interval_constructor_scales(self):
        poly = Polynomial.interval(diff({"x": 3}))
        assert poly.evaluate({"x": 2}) == 6

    def test_addition_and_subtraction(self):
        a = Polynomial.interval(X) + Polynomial.constant(1)
        b = a - Polynomial.interval(X)
        assert b == Polynomial.constant(1)

    def test_multiplication(self):
        a = Polynomial.interval(X)
        b = Polynomial.interval(Y) + Polynomial.constant(2)
        product = a * b
        assert product.evaluate({"x": 3, "y": 4}) == 3 * (4 + 2)
        assert product.degree() == 2

    def test_scalar_multiplication(self):
        assert (Polynomial.interval(X) * 3).evaluate({"x": 2}) == 6

    def test_substitution(self):
        poly = Polynomial.interval(X, 2) + Polynomial.constant(1)
        shifted = poly.substitute("x", diff({"x": 1}, 1))
        assert shifted.evaluate({"x": 4}) == 2 * 5 + 1

    def test_coefficient_lookup(self):
        poly = Polynomial.interval(X, Fraction(2, 3))
        monomial = Monomial.of_atom(IntervalAtom(X))
        assert poly.coefficient(monomial) == Fraction(2, 3)

    def test_degree(self):
        quad = Polynomial.interval(X) * Polynomial.interval(X)
        assert quad.degree() == 2

    def test_str_table1_style(self):
        poly = Polynomial.interval(diff({"n": 1, "x": -1}), 2)
        assert str(poly) == "2*|[x, n]|"

    def test_variables(self):
        poly = Polynomial.interval(X) + Polynomial.interval(Y)
        assert poly.variables() == ("x", "y")

    def test_zero_coefficients_dropped(self):
        poly = Polynomial({Monomial.of_atom(IntervalAtom(X)): 0})
        assert poly.is_zero()


# -- property-based tests -------------------------------------------------------

variables = st.sampled_from(["x", "y", "z"])
small_fracs = st.fractions(min_value=-10, max_value=10, max_denominator=4)
lin_exprs = st.builds(
    lambda coeffs, const: LinExpr(coeffs, const),
    st.dictionaries(variables, small_fracs, min_size=1, max_size=3),
    small_fracs,
).filter(lambda e: not e.is_constant())
states = st.dictionaries(variables, st.integers(-30, 30), min_size=3, max_size=3)


@given(lin_exprs, states)
def test_interval_polynomial_matches_max_semantics(expr, state):
    poly = Polynomial.interval(expr)
    expected = max(Fraction(0), expr.evaluate(state))
    assert poly.evaluate(state) == expected


@given(lin_exprs, lin_exprs, states)
def test_polynomial_product_is_pointwise(e1, e2, state):
    p1, p2 = Polynomial.interval(e1), Polynomial.interval(e2)
    assert (p1 * p2).evaluate(state) == p1.evaluate(state) * p2.evaluate(state)


@given(lin_exprs, lin_exprs, states)
def test_polynomial_substitution_is_semantic(target, replacement, state):
    poly = Polynomial.interval(target) * 2 + Polynomial.constant(3)
    substituted = poly.substitute("x", replacement)
    new_state = dict(state)
    new_state["x"] = replacement.evaluate(state)
    assert substituted.evaluate(state) == poly.evaluate(new_state)


@given(lin_exprs, states)
def test_monomial_substitution_exactness(expr, state):
    monomial = Monomial([IntervalAtom(LinExpr({"x": 1}))])
    coeff, substituted = monomial.substitute("x", expr)
    new_state = dict(state)
    new_state["x"] = expr.evaluate(state)
    assert coeff * substituted.evaluate(state) == monomial.evaluate(new_state)
