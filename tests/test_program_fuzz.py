"""Seeded random-program fuzzing: front-end stability + analyzer soundness.

Two properties over a family of randomly generated probabilistic programs
(loops over decremented counters, probabilistic branches, sampled
increments, constant and nested ticks):

* **printer/parser round trip** -- printing a program and re-parsing it is
  stable: the second print is byte-identical to the first, and the
  re-parsed program analyzes to the same bound.  This is what lets the
  service layer ship programs as text with no semantic drift.
* **soundness against the sampler** -- for every generated program the
  analyzer finds a bound for, the bound evaluated at a concrete input
  dominates the empirical mean cost measured by the vectorised executor
  (within confidence bounds): ``bound >= mean - 4 * stderr``.  The sampler
  is an independent implementation of the semantics, so this catches
  unsound derivations rather than mere crashes.

The generator is deliberately biased towards programs that terminate with
finite expected cost (decrement-dominant loops) so a healthy fraction
analyzes; programs the analyzer rejects still exercise the round trip.
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import List

from repro.core.analyzer import analyze_program
from repro.lang import builder as B
from repro.lang.distributions import Uniform
from repro.lang.parser import parse_program
from repro.lang.printer import program_to_source
from repro.semantics.sampler import estimate_expected_cost

#: Program count per property (each program is tiny; the suite stays fast).
PROGRAM_COUNT = 60

#: Input valuation used for the soundness comparison.
INPUT_STATE = {"x": 9, "y": 6, "n": 7}

#: Slack multiplier on the sampler's standard error.
CI_MULTIPLIER = 4.0


# ---------------------------------------------------------------------------
# The generator
# ---------------------------------------------------------------------------

def _random_step(rng: random.Random, var: str):
    """One loop-body statement that decreases ``var`` on average."""
    choice = rng.random()
    if choice < 0.4:
        return B.assign(var, f"{var} - {rng.randint(1, 2)}")
    if choice < 0.7:
        # Biased random walk: p >= 2/3 of stepping down.
        p = rng.choice(("2/3", "3/4", "4/5"))
        return B.prob(p, B.assign(var, f"{var} - 1"),
                      B.assign(var, f"{var} + 1"))
    if choice < 0.85:
        # Sampled decrement with strictly positive mean.
        return B.decr_sample(var, Uniform(1, rng.randint(2, 3)))
    return B.prob("1/2", B.assign(var, f"{var} - 2"),
                  B.assign(var, f"{var} - 1"))


def _random_tick(rng: random.Random):
    if rng.random() < 0.3:
        return B.tick(rng.choice((Fraction(1, 2), Fraction(3, 2), 2, 3)))
    return B.tick(1)


def _random_loop(rng: random.Random, var: str, depth: int = 0):
    body = [_random_step(rng, var), _random_tick(rng)]
    if rng.random() < 0.3:
        body.insert(1, B.prob("1/2", B.tick(1), B.skip()))
    if depth == 0 and rng.random() < 0.25:
        inner_var = "y" if var != "y" else "x"
        body.append(B.assign(inner_var, rng.choice(("3", "x", "n"))))
        body.append(_random_loop(rng, inner_var, depth=1))
    return B.while_(f"{var} > 0", *body)


def random_program(rng: random.Random):
    """A random program over parameters ``x, y, n`` (main procedure only)."""
    statements = []
    loop_count = rng.randint(1, 2)
    variables = rng.sample(("x", "y", "n"), loop_count)
    for var in variables:
        if rng.random() < 0.3:
            statements.append(B.assume(f"{var} >= 0"))
        statements.append(_random_loop(rng, var))
        if rng.random() < 0.3:
            statements.append(_random_tick(rng))
    if rng.random() < 0.2:
        statements.append(B.prob("1/2", B.tick(1), B.skip()))
    return B.program(B.proc("main", ["x", "y", "n"], *statements))


# ---------------------------------------------------------------------------
# Properties
# ---------------------------------------------------------------------------

def test_printer_parser_round_trip_is_stable():
    rng = random.Random(0xF22)
    for _ in range(PROGRAM_COUNT):
        program = random_program(rng)
        printed = program_to_source(program)
        reparsed = parse_program(printed)
        assert program_to_source(reparsed) == printed


def test_round_trip_preserves_analysis():
    """Parsing the printed text yields the same bound as the original AST."""
    rng = random.Random(0xB0B)
    analyzed = 0
    for _ in range(PROGRAM_COUNT // 3):
        program = random_program(rng)
        original = analyze_program(program, max_degree=1, degree_limit=2)
        reparsed = analyze_program(parse_program(program_to_source(program)),
                                   max_degree=1, degree_limit=2)
        assert original.success == reparsed.success
        if original.success:
            analyzed += 1
            assert original.bound.pretty() == reparsed.bound.pretty()
    assert analyzed >= 5, "generator produced too few analyzable programs"


def test_bounds_dominate_sampled_means():
    rng = random.Random(0x5EED)
    analyzed = 0
    failures: List[str] = []
    for index in range(PROGRAM_COUNT):
        program = random_program(rng)
        result = analyze_program(program, max_degree=1, degree_limit=2)
        if not result.success:
            continue
        analyzed += 1
        stats = estimate_expected_cost(program, dict(INPUT_STATE),
                                       runs=400, seed=index,
                                       max_steps=20_000, engine="auto")
        if stats.unfinished_runs:
            # Truncated runs bias the mean down; the domination check is
            # still valid, but flag pathological generators loudly.
            assert stats.unfinished_runs < stats.runs
        bound_value = result.bound.evaluate_float(INPUT_STATE)
        tolerance = CI_MULTIPLIER * stats.standard_error()
        if bound_value < stats.mean - tolerance:
            failures.append(
                f"program {index}: bound {result.bound.pretty()} = "
                f"{bound_value:.3f} at {INPUT_STATE} < sampled mean "
                f"{stats.mean:.3f} (tolerance {tolerance:.3f})\n"
                f"{program_to_source(program)}")
    assert not failures, "unsound bounds:\n" + "\n".join(failures)
    assert analyzed >= 15, \
        f"generator produced too few analyzable programs ({analyzed})"


def test_soundness_holds_under_polyhedra_domain():
    """The same soundness property with the polyhedra backend active."""
    rng = random.Random(0x5EED)  # same stream: same programs as above
    analyzed = 0
    for index in range(PROGRAM_COUNT // 3):
        program = random_program(rng)
        result = analyze_program(program, max_degree=1, degree_limit=2,
                                 domain="polyhedra")
        if not result.success:
            continue
        analyzed += 1
        stats = estimate_expected_cost(program, dict(INPUT_STATE),
                                       runs=300, seed=index,
                                       max_steps=20_000, engine="auto")
        bound_value = result.bound.evaluate_float(INPUT_STATE)
        assert bound_value >= stats.mean - CI_MULTIPLIER * stats.standard_error(), (
            f"program {index} unsound under polyhedra: {result.bound.pretty()}"
            f" = {bound_value:.3f} < {stats.mean:.3f}\n"
            f"{program_to_source(program)}")
    assert analyzed >= 5

# ---------------------------------------------------------------------------
# Lint front-end: crash-freedom, differential soundness, verdict agreement
# ---------------------------------------------------------------------------

def _mutate_source(rng: random.Random, source: str) -> str:
    """One random text edit: lint must survive arbitrary broken input."""
    if not source:
        return source
    kind = rng.randrange(4)
    pos = rng.randrange(len(source))
    if kind == 0:                       # delete a slice
        end = min(len(source), pos + rng.randint(1, 12))
        return source[:pos] + source[end:]
    if kind == 1:                       # truncate
        return source[:pos]
    if kind == 2:                       # insert junk
        junk = "".join(rng.choice("(){};=<>*/+-x0 $#\n")
                       for _ in range(rng.randint(1, 6)))
        return source[:pos] + junk + source[pos:]
    return source[:pos] + rng.choice("}{;*") + source[pos:]  # swap one char


def test_lint_never_crashes_on_fuzzed_sources():
    """lint_source returns diagnostics (often just R001) for ANY input."""
    from repro.lang.analysis import CODES, lint_source

    rng = random.Random(0x11A7)
    linted = 0
    for _ in range(110):
        source = program_to_source(random_program(rng))
        for candidate in [source] + [_mutate_source(rng, source)
                                     for _ in range(4)]:
            diagnostics = lint_source(candidate)
            for diag in diagnostics:
                assert diag.code in CODES
            linted += 1
    assert linted >= 500


def test_lint_clean_programs_never_read_uninitialized():
    """No R101/R102 => the strict-init interpreter never raises.

    The definite-initialization pass under-approximates, so lint silence
    is a *guarantee*; this differential run is the oracle for it.
    """
    from repro.lang.analysis import lint_program
    from repro.lang.errors import UninitializedReadError
    from repro.semantics.interp import Interpreter

    rng = random.Random(0xD1FF)
    checked = 0
    for index in range(PROGRAM_COUNT):
        program = random_program(rng)
        diagnostics = lint_program(program)
        if any(diag.code in ("R101", "R102") for diag in diagnostics):
            continue
        interpreter = Interpreter(program, max_steps=5_000, strict_init=True)
        for seed in range(3):
            try:
                interpreter.run(dict(INPUT_STATE), seed=seed)
            except UninitializedReadError as exc:
                raise AssertionError(
                    f"program {index} lints clean but reads {exc.name!r} "
                    f"uninitialized:\n{program_to_source(program)}")
        checked += 1
    assert checked >= PROGRAM_COUNT // 2


def _vexec_accepts(program, scheduler=None) -> bool:
    from repro.semantics.vexec import VecInterpreter, VectorisationError

    try:
        VecInterpreter(program, scheduler=scheduler)
    except VectorisationError:
        return False
    return True


def _poisoned_programs():
    """Programs hitting each static vectorisation rejection (and near-misses)."""
    import repro.lang.ast as ast_mod

    limit = 1 << 61
    yield B.program(B.proc("main", ["n"], ast_mod.Assign(
        "x", ast_mod.Const(Fraction(limit + 1)))))          # const too large
    yield B.program(B.proc("main", ["n"], ast_mod.Assign(
        "x", ast_mod.Const(Fraction(limit)))))              # boundary: fits
    yield B.program(B.proc("main", ["n"], ast_mod.Assign(
        "x", ast_mod.Const(Fraction(1, 2)))))               # non-integral
    yield B.program(B.proc("main", ["n"],
                           B.tick(Fraction(10 ** 13))))     # accumulator
    yield B.program(B.proc("main", ["n"], B.tick(Fraction(1, 2))))  # scaled ok
    yield B.program(B.proc("main", ["n"], ast_mod.NonDetChoice(
        B.tick(1), B.skip())))                              # needs choice mode


def test_vectorizability_verdict_matches_vexec():
    """Static verdict == dynamic compile outcome: registry, fuzz, poisons."""
    from repro.bench.registry import benchmark_names, get_benchmark
    from repro.lang.analysis import VEC_VALUE_LIMIT, vectorizability_verdict
    from repro.semantics import vexec
    from repro.semantics.interp import Scheduler
    from repro.semantics.sampler import resolve_engine_with_reason

    assert VEC_VALUE_LIMIT == vexec._VALUE_LIMIT  # the drift pin

    programs = []
    for name in benchmark_names():
        benchmark = get_benchmark(name)
        programs.append((name, parse_program(benchmark.source_text())))
        programs.append((f"{name} (simulation)",
                         benchmark.build_for_simulation()))
    rng = random.Random(0xEC)
    for index in range(20):
        programs.append((f"fuzz {index}", random_program(rng)))
    for index, poisoned in enumerate(_poisoned_programs()):
        programs.append((f"poison {index}", poisoned))

    for label, program in programs:
        verdict = vectorizability_verdict(program)
        accepted = _vexec_accepts(program)
        assert verdict.ok == accepted, (
            f"{label}: static verdict {verdict.ok} "
            f"({verdict.reason!r}) != vexec acceptance {accepted}")
        engine, _, reason = resolve_engine_with_reason("auto", program)
        assert engine == ("vec" if accepted else "scalar")
        assert bool(reason) == (not accepted)
        if not verdict.ok:
            assert verdict.reason  # every rejection names its construct

    # An unresolvable scheduler blocks '*' lane-wise on both sides.
    import repro.lang.ast as ast_mod
    star = B.program(B.proc("main", ["n"],
                            ast_mod.NonDetChoice(B.tick(1), B.skip())))
    opaque = Scheduler()
    mode = vexec.VecInterpreter._resolve_choice_mode(opaque)
    assert mode is None
    assert not vectorizability_verdict(star, choice_mode=mode).ok
    assert not _vexec_accepts(star, scheduler=opaque)
