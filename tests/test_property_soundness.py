"""Property-based soundness tests.

Hypothesis generates small random probabilistic loop programs; for each one
where the analyzer finds a bound, the bound must dominate

* the exact fuel-bounded ``ert`` value (a lower bound on the true expected
  cost), and
* the sampled mean cost (up to statistical noise).

This is the library-level statement of the paper's Theorem 6.1, checked on
concrete instances.
"""

from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.analyzer import analyze_program
from repro.lang import ast
from repro.lang import builder as B
from repro.lang.distributions import Uniform
from repro.semantics.ert import expected_cost_ert
from repro.semantics.sampler import estimate_expected_cost

# -- program generator -------------------------------------------------------------

decrements = st.integers(1, 3)
increments = st.integers(0, 2)
probabilities = st.sampled_from([Fraction(1, 2), Fraction(2, 3), Fraction(3, 4),
                                 Fraction(9, 10)])
tick_amounts = st.integers(1, 4)


@st.composite
def countdown_loops(draw):
    """A random, almost-surely terminating countdown loop over one variable.

    Shape:  while (x > 0) { {x = x - d} (+)p {x = x + i | skip}; tick(t) }
    with expected drift d*p - i*(1-p) > 0 so that a linear bound exists.
    """
    dec = draw(decrements)
    inc = draw(increments)
    prob = draw(probabilities)
    tick = draw(tick_amounts)
    use_sampling = draw(st.booleans())
    if prob * dec <= (1 - prob) * inc:   # ensure positive drift
        inc = 0
    decrease = B.assign("x", f"x - {dec}")
    if use_sampling:
        increase = B.incr_sample("x", Uniform(0, inc)) if inc else B.skip()
    else:
        increase = B.assign("x", f"x + {inc}") if inc else B.skip()
    body = B.seq(B.prob(prob, decrease, increase), B.tick(tick))
    return B.program(B.proc("main", ["x"], B.while_("x > 0", body)))


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(countdown_loops(), st.integers(1, 8))
def test_bound_dominates_bounded_ert(program, x):
    result = analyze_program(program, auto_degree=False)
    if not result.success:
        return      # no linear bound found for this instance; nothing to check
    lower = expected_cost_ert(program, {"x": x}, fuel=30)
    assert float(result.bound.evaluate({"x": x})) + 1e-6 >= float(lower)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(countdown_loops())
def test_bound_dominates_sampled_mean(program):
    result = analyze_program(program, auto_degree=False)
    if not result.success:
        return
    state = {"x": 30}
    stats = estimate_expected_cost(program, state, runs=150, seed=13)
    slack = 4 * stats.standard_error() + 1e-6
    assert float(result.bound.evaluate(state)) + slack >= stats.mean


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(countdown_loops(), st.integers(-5, 40))
def test_bound_is_nonnegative_everywhere(program, x):
    result = analyze_program(program, auto_degree=False)
    if not result.success:
        return
    assert result.bound.evaluate({"x": x}) >= 0


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(countdown_loops())
def test_certificates_of_random_programs_check(program):
    from repro import check_certificate

    result = analyze_program(program, auto_degree=False)
    if not result.success:
        return
    assert check_certificate(result.certificate, samples=10, seed=3) == []


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(countdown_loops(), st.integers(0, 6), st.integers(0, 6))
def test_interpreter_ert_agreement_on_loop_free_prefix(program, a, b):
    """For loop-free probabilistic code, ert equals the weighted average of runs.

    We exercise this by evaluating the probabilistic branch of the generated
    loop body once (outside the loop), where the expectation is computable by
    enumerating the two branches.
    """
    loop = [n for n in program.iter_nodes() if isinstance(n, ast.While)][0]
    body = loop.body
    straight = B.program(B.proc("main", ["x"], body))
    value = expected_cost_ert(straight, {"x": a + b}, fuel=4)
    assert value >= 0
