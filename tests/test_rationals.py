"""Unit tests for repro.utils.rationals."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.utils.rationals import (
    is_close_fraction,
    pretty_fraction,
    snap_fraction,
    sound_floor_fraction,
    to_fraction,
)


class TestToFraction:
    def test_int(self):
        assert to_fraction(3) == Fraction(3)

    def test_fraction_passthrough(self):
        assert to_fraction(Fraction(2, 7)) == Fraction(2, 7)

    def test_string_ratio(self):
        assert to_fraction("3/4") == Fraction(3, 4)

    def test_float_exact(self):
        assert to_fraction(0.5) == Fraction(1, 2)

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            to_fraction(True)

    def test_other_type_rejected(self):
        with pytest.raises(TypeError):
            to_fraction([1, 2])


class TestSnapFraction:
    def test_snaps_to_simple_fraction(self):
        assert snap_fraction(0.6666666669) == Fraction(2, 3)

    def test_snaps_near_integer(self):
        assert snap_fraction(1.9999990) == Fraction(2)

    def test_snaps_tiny_noise_to_zero(self):
        assert snap_fraction(1e-7) == 0

    def test_keeps_genuine_value(self):
        value = 0.123456789
        snapped = snap_fraction(value)
        assert abs(float(snapped) - value) <= 1e-5 * abs(value) + 1e-12

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            snap_fraction(float("nan"))


class TestSoundFloor:
    def test_returns_lower_bound(self):
        value = 8.9999999
        floored = sound_floor_fraction(value)
        assert float(floored) <= value + 1e-5

    def test_exact_value_kept(self):
        assert sound_floor_fraction(3.0) == Fraction(3)


class TestPrettyFraction:
    def test_integer(self):
        assert pretty_fraction(Fraction(5)) == "5"

    def test_exact_decimal(self):
        assert pretty_fraction(Fraction(1, 5)) == "0.2"

    def test_repeating_decimal(self):
        assert pretty_fraction(Fraction(2, 3)) == "0.666667"

    def test_negative(self):
        assert pretty_fraction(Fraction(-9, 2)) == "-4.5"


class TestIsClose:
    def test_close(self):
        assert is_close_fraction(Fraction(1, 3), Fraction(1, 3) + Fraction(1, 10 ** 9))

    def test_not_close(self):
        assert not is_close_fraction(Fraction(1, 3), Fraction(1, 2))


@given(st.fractions(max_denominator=500))
def test_pretty_fraction_never_crashes(value):
    assert isinstance(pretty_fraction(value), str)


@given(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False))
def test_snap_is_faithful(value):
    snapped = snap_fraction(value)
    assert abs(float(snapped) - value) <= 1e-5 * max(1.0, abs(value)) + 1e-9
