"""Tests for rewrite-function generation and the base-function heuristic."""

from fractions import Fraction

import numpy as np
import pytest

from repro.core.basegen import (
    BaseGenConfig,
    atoms_for_loop,
    dead_at_loop_head,
    monomials_up_to_degree,
    template_monomials_for_loop,
    template_monomials_for_procedure,
)
from repro.core.rewrite import applicable_monomials, generate_rewrites
from repro.lang import ast
from repro.lang import builder as B
from repro.lang.distributions import Uniform
from repro.logic.contexts import Context
from repro.utils.linear import LinExpr
from repro.utils.polynomials import IntervalAtom, Monomial


def atom(coeffs, const=0):
    return IntervalAtom(LinExpr(coeffs, const))


X = atom({"x": 1})
X_MINUS_1 = atom({"x": 1}, -1)
N_MINUS_X = atom({"n": 1, "x": -1})


class TestRewriteGeneration:
    def test_every_pool_monomial_can_be_discarded(self):
        pool = [Monomial.one(), Monomial.of_atom(X)]
        rewrites = generate_rewrites(Context.top(), pool, max_degree=1)
        discard_polys = {str(r.polynomial) for r in rewrites}
        assert "1" in discard_polys
        assert "|[0, x]|" in discard_polys

    def test_constant_extraction_requires_context(self):
        pool = [Monomial.of_atom(X)]
        without = generate_rewrites(Context.top(), pool, 1)
        with_ctx = generate_rewrites(Context([LinExpr({"x": 1}, -3)]), pool, 1)
        assert not any("under context" in r.reason for r in without)
        assert any("|[0, x]| >= 3" in r.reason for r in with_ctx)

    def test_telescoping_pair_rewrite(self):
        """|[0,x]| - |[1,x]| - 1 >= 0 is available when the context gives x >= 1."""
        pool = [Monomial.of_atom(X), Monomial.of_atom(X_MINUS_1)]
        context = Context([LinExpr({"x": 1}, -1)])
        rewrites = generate_rewrites(context, pool, 1)
        targets = [r for r in rewrites
                   if r.polynomial.coefficient(Monomial.of_atom(X)) == 1
                   and r.polynomial.coefficient(Monomial.of_atom(X_MINUS_1)) == -1]
        assert any(r.polynomial.constant_value() == -1 for r in targets)

    def test_negative_shift_pair_rewrite(self):
        """|[1,x]| - |[0,x]| + 1 >= 0 holds unconditionally."""
        pool = [Monomial.of_atom(X), Monomial.of_atom(X_MINUS_1)]
        rewrites = generate_rewrites(Context.top(), pool, 1)
        assert any(r.polynomial.coefficient(Monomial.of_atom(X_MINUS_1)) == 1
                   and r.polynomial.coefficient(Monomial.of_atom(X)) == -1
                   and r.polynomial.constant_value() == 1 for r in rewrites)

    def test_rewrites_are_nonnegative_on_context_states(self):
        pool = [Monomial.of_atom(X), Monomial.of_atom(X_MINUS_1), Monomial.of_atom(N_MINUS_X)]
        context = Context([LinExpr({"x": 1}, -1), LinExpr({"n": 1, "x": -1})])
        rewrites = generate_rewrites(context, pool, 1)
        rng = np.random.default_rng(0)
        states = []
        while len(states) < 25:
            state = {"x": int(rng.integers(-5, 30)), "n": int(rng.integers(-5, 30))}
            if context.satisfied_by(state):
                states.append(state)
        for rewrite in rewrites:
            for state in states:
                assert rewrite.polynomial.evaluate(state) >= 0, rewrite.reason

    def test_degree_two_lifting(self):
        quad = Monomial({X: 2})
        pool = [Monomial.of_atom(X), Monomial.of_atom(X_MINUS_1), quad]
        context = Context([LinExpr({"x": 1}, -1)])
        rewrites = generate_rewrites(context, pool, 2)
        assert any(r.polynomial.degree() == 2 for r in rewrites)

    def test_applicable_monomials(self):
        pool = [Monomial.of_atom(X)]
        rewrites = generate_rewrites(Context([LinExpr({"x": 1}, -1)]), pool, 1)
        monomials = applicable_monomials(rewrites)
        assert Monomial.of_atom(X) in monomials
        assert Monomial.one() in monomials


class TestDeadVariables:
    def test_reset_variable_is_dead(self):
        loop = B.while_("s > 0",
            B.assign("s", "s - 1"),
            B.sample("k", Uniform(0, 3)),
            B.while_("k > 0", B.assign("k", "k - 1"), B.tick(1)))
        assert dead_at_loop_head(loop, "k")
        assert not dead_at_loop_head(loop, "s")

    def test_variable_read_first_is_live(self):
        loop = B.while_("x > 0", B.assign("y", "y + 1"), B.assign("x", "x - 1"))
        assert not dead_at_loop_head(loop, "y")

    def test_branch_defined_on_one_side_only_is_live(self):
        loop = B.while_("x > 0",
            B.if_("x > 5", B.assign("t", "0"), B.skip()),
            B.assign("x", "x - 1"))
        assert not dead_at_loop_head(loop, "t")

    def test_guard_variable_is_live(self):
        loop = B.while_("k > 0", B.assign("k", "0"))
        assert not dead_at_loop_head(loop, "k")


class TestBaseFunctionHeuristic:
    def _race_loop(self):
        program = B.program(B.proc("main", ["h", "t"],
            B.while_("h <= t",
                B.assign("t", "t + 1"),
                B.prob("1/2", B.incr_sample("h", Uniform(0, 10)), B.skip()),
                B.tick(1))))
        return [n for n in program.iter_nodes() if isinstance(n, ast.While)][0]

    def test_guard_atoms_widened_by_sampling_range(self):
        loop = self._race_loop()
        atoms = atoms_for_loop(loop, Context.top(), [], BaseGenConfig())
        rendered = {str(a) for a in atoms}
        assert "|[h, t]|" in rendered
        assert "|[h, t + 9]|" in rendered

    def test_post_monomials_always_included(self):
        loop = self._race_loop()
        extra = Monomial.of_atom(atom({"q": 1}))
        monomials = template_monomials_for_loop(loop, Context.top(), [extra],
                                                BaseGenConfig())
        assert extra in monomials

    def test_hint_atoms_included(self):
        loop = self._race_loop()
        hint = LinExpr({"t": 1, "h": -1}, 42)
        config = BaseGenConfig(hint_atoms=(hint,))
        atoms = atoms_for_loop(loop, Context.top(), [], config)
        assert any(a.diff == hint for a in atoms)

    def test_atom_budget_respected(self):
        loop = self._race_loop()
        config = BaseGenConfig(atom_limit=5)
        atoms = atoms_for_loop(loop, Context.top(), [], config)
        assert len(atoms) <= 5

    def test_monomials_up_to_degree_two(self):
        monomials = monomials_up_to_degree([X, N_MINUS_X], 2)
        degrees = {m.degree() for m in monomials}
        assert degrees == {0, 1, 2}
        assert Monomial({X: 1, N_MINUS_X: 1}) in monomials

    def test_monomial_limit(self):
        atoms = [atom({f"v{i}": 1}) for i in range(20)]
        monomials = monomials_up_to_degree(atoms, 2, limit=30)
        assert len(monomials) <= 30

    def test_procedure_templates_cover_guards(self):
        body = B.seq(
            B.if_("h > l",
                  B.seq(B.tick(1), B.prob("1/2", B.assign("l", "l + 1"),
                                          B.assign("h", "h - 1")),
                        B.call("narrow")),
                  B.skip()))
        monomials = template_monomials_for_procedure(body, Context.top(),
                                                     BaseGenConfig(max_degree=2))
        rendered = {str(m) for m in monomials}
        assert "|[l, h]|" in rendered or "|[l + 1, h]|" in rendered
        assert any(m.degree() == 2 for m in monomials)
