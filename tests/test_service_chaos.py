"""End-to-end chaos tests: supervised recovery under injected faults.

The deterministic fault registry (:mod:`repro.service.faults`) lets these
tests crash workers, hang jobs and corrupt store records on a fixed seeded
schedule, then assert the supervision machinery's contract: **zero lost
jobs, bounds byte-identical to a fault-free run, every recovery recorded
as provenance**.
"""

import io
import json
import multiprocessing
import time

import pytest

from repro.service import faults
from repro.service.faults import FaultSpec, unit_fraction
from repro.service.jobs import SCHEMA_VERSION, AnalysisJob
from repro.service.retry import RetryPolicy
from repro.service.scheduler import SchedulerConfig, run_batch, run_jobs
from repro.service.server import AnalysisServer
from repro.service.store import ResultStore

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

needs_fork = pytest.mark.skipif(
    not HAS_FORK, reason="needs fork start method (the fault registry is "
                         "inherited by pool workers at fork time)")

RDWALK = """
proc main(x, n) {
    while (x < n) {
        prob(3/4) { x = x + 1; } else { x = x - 1; }
        tick(1);
    }
}
"""


def _suite_jobs(count=4):
    from repro.bench.registry import select_benchmarks
    from repro.service.jobs import job_from_benchmark

    return [job_from_benchmark(bench)
            for bench in select_benchmarks(["@linear"])[:count]]


@pytest.fixture(autouse=True)
def _fault_free():
    faults.disable()
    yield
    faults.disable()


class TestCrashRecovery:
    @needs_fork
    def test_single_crash_is_retried_and_recovered(self):
        # Crash every first attempt (":1" only matches attempt 1); the solo
        # re-run (attempt 2) is clean.
        faults.configure([FaultSpec("worker-crash", match=":1")], seed=0)
        job = AnalysisJob.create("rdwalk", RDWALK)
        # Worker faults never fire outside pool workers, so an inline run
        # is a safe baseline even with the registry installed.
        baseline = run_jobs([job], workers=0)[0]
        assert baseline.status == "ok"
        results = run_jobs([job], workers=1)
        result = results[0]
        assert result.status == "ok"
        assert result.bound == baseline.bound
        assert result.attempts == 2
        lost = [event for event in result.fault_events
                if event["kind"] == "worker-lost"]
        assert len(lost) == 1
        assert lost[0]["key"] == f"{job.job_hash}:1"

    @needs_fork
    def test_poison_job_is_quarantined_not_retried_forever(self):
        # Crash on *every* attempt: group break, then two attributable
        # single-worker breaks -> poison quarantine.
        faults.configure([FaultSpec("worker-crash")], seed=0)
        job = AnalysisJob.create("poison", RDWALK)
        start = time.monotonic()
        results = run_jobs([job], workers=1)
        elapsed = time.monotonic() - start
        result = results[0]
        assert result.status == "error"
        assert "poison" in result.message
        kinds = [event["kind"] for event in result.fault_events]
        assert kinds.count("worker-lost") == 3
        assert "poison-quarantine" in kinds
        assert result.attempts == 3
        # Bounded: three pool rounds plus two tiny backoffs, not forever.
        assert elapsed < 60

    @needs_fork
    def test_retry_budget_bounds_a_hostile_environment(self):
        # Every attempt of every job crashes; a budget of 1 means exactly
        # one supervised retry happens across the whole batch.
        faults.configure([FaultSpec("worker-crash")], seed=0)
        job = AnalysisJob.create("hostile", RDWALK)
        results = run_jobs([job], workers=1,
                           retry=RetryPolicy(budget=1))
        result = results[0]
        assert result.status == "error"
        assert "budget" in result.message or "poison" in result.message
        assert result.attempts <= 2

    @needs_fork
    def test_backoff_schedule_is_identical_across_runs(self):
        policy = RetryPolicy(seed=5)
        job = AnalysisJob.create("rdwalk", RDWALK)
        schedule = policy.schedule(job.job_hash)
        # The exact sleeps the supervisor will perform for this job are a
        # pure function of (policy seed, job hash, attempt): reproducible
        # before the batch ever runs.
        assert schedule == RetryPolicy(seed=5).schedule(job.job_hash)
        assert all(delay >= 0.0 for delay in schedule)


class TestChaosGate:
    """The acceptance gate in miniature: faults on, nothing lost."""

    @needs_fork
    def test_crash_chaos_batch_matches_fault_free_bounds(self):
        jobs = _suite_jobs(4)
        baseline = run_jobs(jobs, workers=0)
        assert all(result.status == "ok" for result in baseline)

        # Pick a seed (deterministically -- the fault schedule is a pure
        # function of seed, hash and attempt) where crashes fire on at
        # least one first attempt and never on a retry: recovery then
        # always succeeds, no matter which jobs happen to share a pool
        # when it breaks.  Job hashes include the active domain, so the
        # seed is computed rather than hard-coded.
        p = 0.25
        seed = next(
            s for s in range(10_000)
            if not any(unit_fraction(s, "worker-crash",
                                     f"{job.job_hash}:{attempt}") < p
                       for job in jobs for attempt in (2, 3, 4))
            and any(unit_fraction(s, "worker-crash",
                                  f"{job.job_hash}:1") < p for job in jobs))
        faults.configure([FaultSpec("worker-crash", probability=p)],
                         seed=seed)
        chaotic = run_jobs(jobs, workers=2)
        faults.disable()

        # Zero lost jobs, byte-identical bounds.
        assert [result.status for result in chaotic] \
            == [result.status for result in baseline]
        assert [result.bound for result in chaotic] \
            == [result.bound for result in baseline]
        # The chaos really happened and every recovery left provenance.
        crashed = [result for result in chaotic if result.attempts > 1]
        assert crashed, "the chosen seed must crash at least one first attempt"
        assert all(any(event["kind"] == "worker-lost"
                       for event in result.fault_events)
                   for result in crashed)

    def test_corrupt_store_chaos_recomputes_and_quarantines(self, tmp_path):
        jobs = _suite_jobs(3)
        store = ResultStore(str(tmp_path))
        first = run_batch(jobs, SchedulerConfig(workers=0, store=store))
        assert first.cache_hits == 0

        # Clobber every other record on disk.
        corrupted = 0
        for index, job in enumerate(jobs):
            if index % 2 == 0:
                with open(store._path(job.job_hash), "w",
                          encoding="utf-8") as handle:
                    handle.write("{ bit rot")
                corrupted += 1

        second = run_batch(jobs, SchedulerConfig(workers=0, store=store))
        assert [result.bound for result in second.results] \
            == [result.bound for result in first.results]
        assert second.cache_hits == len(jobs) - corrupted
        assert store.stats.quarantined == corrupted
        assert store.quarantine_count() == corrupted
        # Recomputation repaired the cache in place.
        third = run_batch(jobs, SchedulerConfig(workers=0, store=store))
        assert third.cache_hits == len(jobs)


class TestTimeoutDegradation:
    @needs_fork
    def test_timed_out_job_retries_once_at_lower_degree(self):
        job = AnalysisJob.create("slow", RDWALK)
        # Hang only the original job (matched by its hash): the degraded
        # re-run has a different content hash and runs clean.
        faults.configure([FaultSpec("worker-hang", match=job.job_hash[:16],
                                    duration=30.0)], seed=0)
        results = run_jobs([job], workers=1, timeout=1.5)
        result = results[0]
        assert result.status == "ok"
        assert result.degraded == {"kind": "degree-fallback", "from": 2,
                                   "to": 1, "reason": "timeout"}
        assert result.attempts == 2
        assert result.job_hash == job.job_hash
        # Lower-degree results are environment-shaped: never cached.
        assert not result.cacheable

    @needs_fork
    def test_degree_one_timeouts_stay_timeouts(self):
        job = AnalysisJob.create("slow", RDWALK, {"degree_limit": 1})
        faults.configure([FaultSpec("worker-hang", duration=30.0)], seed=0)
        results = run_jobs([job], workers=1, timeout=1.0)
        # Nothing left to degrade to: the structured timeout stands.
        assert results[0].status == "timeout"
        assert results[0].degraded == {}


class _HangupStream(io.StringIO):
    """A stdout whose reader goes away after ``limit`` full responses.

    ``json.dump`` streams a response as many small writes, so the hang-up
    trigger counts completed lines, not write calls.
    """

    def __init__(self, limit):
        super().__init__()
        self.limit = limit

    def write(self, text):
        if self.getvalue().count("\n") >= self.limit:
            raise BrokenPipeError("reader went away")
        return super().write(text)


class TestServerHardening:
    def _serve(self, requests, server=None):
        server = server or AnalysisServer()
        stdin = io.StringIO("\n".join(json.dumps(r) for r in requests) + "\n")
        stdout = io.StringIO()
        server.serve(stdin, stdout)
        return [json.loads(line) for line in stdout.getvalue().splitlines()]

    def test_unexpected_exception_does_not_kill_the_server(self, monkeypatch):
        server = AnalysisServer()

        def boom(payload):
            raise RuntimeError("wires crossed")

        monkeypatch.setattr(server, "_handle_analyze", boom)
        responses = self._serve([{"id": 1, "source": RDWALK},
                                 {"op": "ping"}], server=server)
        assert responses[0]["error"] == "RuntimeError: wires crossed"
        assert responses[0]["id"] == 1
        # The loop survived and served the next request.
        assert responses[1] == {"op": "ping", "ok": True}

    def test_broken_pipe_shuts_down_cleanly(self):
        server = AnalysisServer()
        stdin = io.StringIO('{"op": "ping"}\n{"op": "ping"}\n{"op": "ping"}\n')
        stdout = _HangupStream(limit=1)
        served = server.serve(stdin, stdout)   # must not raise
        assert served == 2    # first answered, second hit the dead pipe
        assert len(stdout.getvalue().splitlines()) == 1

    def test_health_op(self, tmp_path):
        store = ResultStore(str(tmp_path))
        server = AnalysisServer(store=store, workers=3)
        responses = self._serve([{"source": RDWALK},
                                 {"op": "health", "id": 9}], server=server)
        health = responses[1]
        assert health["ok"] is True and health["id"] == 9
        assert health["pool"]["workers"] == 3
        assert health["store"]["records"] == 1
        assert health["store"]["quarantine_records"] == 0
        assert health["engine"]["domain"]
        assert health["faults"] is None
        assert health["schema"] == SCHEMA_VERSION

    def test_health_reports_active_faults_and_quarantine(self, tmp_path):
        store = ResultStore(str(tmp_path))
        server = AnalysisServer(store=store)
        self._serve([{"source": RDWALK}], server=server)
        job = AnalysisJob.create("request-0", RDWALK)
        with open(store._path(job.job_hash), "w", encoding="utf-8") as handle:
            handle.write("{ bit rot")
        faults.configure([FaultSpec("store-write-fail", probability=0.5)],
                         seed=3)
        responses = self._serve([{"source": RDWALK},
                                 {"op": "stats"},
                                 {"op": "health"}], server=server)
        stats, health = responses[1], responses[2]
        assert stats["store"]["quarantined"] == 1
        assert stats["store"]["quarantine_records"] == 1
        assert health["store"]["quarantine_records"] == 1
        assert health["faults"] == [{"kind": "store-write-fail",
                                     "site": "store.put",
                                     "probability": 0.5, "match": "",
                                     "limit": None, "duration": 30.0}]
