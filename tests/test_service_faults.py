"""Tests for the fault-injection registry and the retry/backoff policy.

Covers the ISSUE-6 checklist items: retry/backoff determinism (the seeded
jitter schedule is exactly reproducible), store-fault survival, the
fm-cap -> polyhedra degradation rung, and the store quarantine round trip.
"""

import json
import os

import pytest

from repro.service import faults
from repro.service.faults import FaultRegistry, FaultSpec, InjectedFault
from repro.service.jobs import AnalysisJob, JobResult, run_job
from repro.service.retry import RetryPolicy
from repro.service.scheduler import SchedulerConfig, run_batch
from repro.service.store import ResultStore

RDWALK = """
proc main(x, n) {
    while (x < n) {
        prob(3/4) { x = x + 1; } else { x = x - 1; }
        tick(1);
    }
}
"""


@pytest.fixture(autouse=True)
def _fault_free():
    """Every test starts and ends with fault injection off."""
    faults.disable()
    yield
    faults.disable()


class TestRegistry:
    def test_unit_fraction_is_deterministic_and_uniformish(self):
        a = faults.unit_fraction(1, "worker-crash", "abc:1")
        assert a == faults.unit_fraction(1, "worker-crash", "abc:1")
        assert 0.0 <= a < 1.0
        assert a != faults.unit_fraction(2, "worker-crash", "abc:1")
        assert a != faults.unit_fraction(1, "worker-crash", "abc:2")

    def test_decisions_depend_only_on_seed_kind_and_key(self):
        spec = FaultSpec("worker-crash", probability=0.3)
        first = FaultRegistry([spec], seed=7)
        second = FaultRegistry([spec], seed=7)
        keys = [f"{'%02x' % byte * 8}:1" for byte in range(64)]
        decide = lambda reg: [bool(reg.decide("worker", key)) for key in keys]
        assert decide(first) == decide(second)
        fired = sum(decide(first))
        # p=0.3 over 64 keys: not all, not none (deterministic, so this is
        # a fixed property of the seed, not a flaky statistical bound).
        assert 0 < fired < 64
        other_seed = FaultRegistry([spec], seed=8)
        assert decide(first) != decide(other_seed)

    def test_match_and_limit_filters(self):
        spec = FaultSpec("worker-crash", match=":1", limit=2)
        registry = FaultRegistry([spec], seed=0)
        assert registry.decide("worker", "aa:1")
        assert not registry.decide("worker", "aa:2")
        registry.record(spec, "aa:1")
        registry.record(spec, "bb:1")
        assert not registry.decide("worker", "cc:1")   # limit reached

    def test_unknown_kind_is_rejected_eagerly(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultRegistry([FaultSpec("frobnicate")])

    def test_parse_spec_grammar(self):
        specs = faults.parse_spec(
            "worker-crash:p=0.2;store-corrupt:p=0.5,match=ab,limit=3;"
            "worker-hang:duration=0.5")
        assert [spec.kind for spec in specs] \
            == ["worker-crash", "store-corrupt", "worker-hang"]
        assert specs[0].probability == 0.2
        assert specs[1].match == "ab" and specs[1].limit == 3
        assert specs[2].duration == 0.5
        assert faults.parse_spec("") == []
        with pytest.raises(ValueError, match="unknown fault parameter"):
            faults.parse_spec("worker-crash:frequency=2")

    def test_env_round_trip(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "store-write-fail:p=0.25")
        monkeypatch.setenv(faults.FAULTS_SEED_ENV, "42")
        registry = faults.registry_from_env()
        assert registry.seed == 42
        assert registry.specs[0].kind == "store-write-fail"
        monkeypatch.setenv(faults.FAULTS_ENV, "")
        assert faults.registry_from_env() is None

    def test_fire_is_a_noop_when_disabled(self):
        faults.disable()
        faults.fire("worker", "whatever:1")
        faults.fire("store.put", "whatever")
        assert faults.drain_events() == []

    def test_worker_faults_never_fire_outside_pool_workers(self):
        # This test process is not a pool worker: an armed worker-crash
        # must not kill it (otherwise inline batches and the server could
        # be crashed by a stray $REPRO_FAULTS).
        faults.configure([FaultSpec("worker-crash")], seed=0)
        faults.fire("worker", "aa:1")
        assert faults.drain_events() == []


class TestRetryPolicy:
    def test_backoff_schedule_is_reproducible(self):
        policy = RetryPolicy(seed=3)
        twin = RetryPolicy(seed=3)
        schedule = policy.schedule("a" * 64, attempts=6)
        assert schedule == twin.schedule("a" * 64, attempts=6)
        assert policy.schedule("b" * 64, attempts=6) != schedule
        assert RetryPolicy(seed=4).schedule("a" * 64, attempts=6) != schedule

    def test_backoff_grows_exponentially_with_jitter_bounds(self):
        policy = RetryPolicy(base_delay=0.1, factor=2.0, max_delay=10.0,
                             jitter=0.25, seed=0)
        for attempt, base in ((2, 0.1), (3, 0.2), (4, 0.4), (5, 0.8)):
            delay = policy.backoff("job", attempt)
            assert base <= delay <= base * 1.25
        assert policy.backoff("job", 1) == 0.0

    def test_backoff_respects_max_delay(self):
        policy = RetryPolicy(base_delay=1.0, factor=10.0, max_delay=2.0,
                             jitter=0.0)
        assert policy.backoff("job", 6) == 2.0

    def test_classification(self):
        policy = RetryPolicy()
        assert policy.classify("worker-lost")
        for status in ("ok", "parse-error", "no-bound", "analysis-error",
                       "timeout", "cancelled", "error", "resource-limit"):
            assert not policy.classify(status)


class TestStoreFaults:
    def test_injected_write_failure_is_survived_by_the_batch(self, tmp_path):
        faults.configure([FaultSpec("store-write-fail")], seed=0)
        store = ResultStore(str(tmp_path))
        job = AnalysisJob.create("rdwalk", RDWALK)
        report = run_batch([job], SchedulerConfig(workers=0, store=store))
        result = report.results[0]
        # The analysis result is still delivered...
        assert result.status == "ok"
        assert result.bound_pretty == "2*|[x, n]|"
        # ...the lost write is provenance, not a crash...
        assert any(event["kind"] == "store-write-error"
                   for event in result.fault_events)
        # ...and nothing was cached.
        assert store.stats.writes == 0
        assert len(store) == 0

    def test_injected_kill_during_write_is_crash_safe(self, tmp_path):
        store = ResultStore(str(tmp_path))
        job = AnalysisJob.create("rdwalk", RDWALK)
        result = run_job(job)
        faults.configure([FaultSpec("store-kill")], seed=0)
        with pytest.raises(OSError):
            store.put(result)
        # The simulated kill left partial temp state behind...
        partials = [name for _, _, files in os.walk(tmp_path)
                    for name in files if name.startswith(".tmp-injected")]
        assert partials
        # ...but no record, and the store keeps working once healthy.
        assert store.get(job.job_hash) is None
        faults.disable()
        store.put(result)
        assert store.get(job.job_hash) == result

    def test_injected_corruption_is_quarantined_on_read(self, tmp_path):
        store = ResultStore(str(tmp_path))
        job = AnalysisJob.create("rdwalk", RDWALK)
        store.put(run_job(job))
        faults.configure([FaultSpec("store-corrupt")], seed=0)
        assert store.get(job.job_hash) is None
        assert store.stats.quarantined == 1
        assert store.quarantine_count() == 1


class TestStoreQuarantine:
    def test_quarantine_round_trip(self, tmp_path):
        store = ResultStore(str(tmp_path))
        job = AnalysisJob.create("rdwalk", RDWALK)
        result = run_job(job)
        store.put(result)
        path = store._path(job.job_hash)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{ not json")
        # Corrupt record: miss, counted, moved out of the hot path.
        assert store.get(job.job_hash) is None
        assert store.stats.invalid == 1
        assert store.stats.quarantined == 1
        assert not os.path.exists(path)
        assert store.quarantine_count() == 1
        assert os.path.exists(os.path.join(store.quarantine_root,
                                           f"{job.job_hash}.json"))
        # The quarantine directory is not part of the cache contents.
        assert list(store.iter_hashes()) == []
        assert len(store) == 0
        # A re-put repairs the cache; the quarantined evidence stays.
        store.put(result)
        assert store.get(job.job_hash) == result
        assert store.quarantine_count() == 1

    def test_checksum_mismatch_is_corrupt(self, tmp_path):
        store = ResultStore(str(tmp_path))
        job = AnalysisJob.create("rdwalk", RDWALK)
        store.put(run_job(job))
        path = store._path(job.job_hash)
        with open(path, encoding="utf-8") as handle:
            record = json.load(handle)
        record["status"] = "no-bound"       # silently flip a field
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(record, handle)
        assert store.get(job.job_hash) is None
        assert store.stats.quarantined == 1

    def test_schema_mismatch_is_replaceable_not_quarantined(self, tmp_path):
        store = ResultStore(str(tmp_path))
        job = AnalysisJob.create("rdwalk", RDWALK)
        store.put(run_job(job))
        path = store._path(job.job_hash)
        with open(path, encoding="utf-8") as handle:
            record = json.load(handle)
        record["schema"] = 999
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(record, handle)
        # An old-version record is legitimate: a miss, left in place for
        # the next put to overwrite.
        assert store.get(job.job_hash) is None
        assert store.stats.invalid == 1
        assert store.stats.quarantined == 0
        assert os.path.exists(path)

    def test_repeated_corruption_keeps_latest_evidence(self, tmp_path):
        store = ResultStore(str(tmp_path))
        job = AnalysisJob.create("rdwalk", RDWALK)
        result = run_job(job)
        for _ in range(2):
            store.put(result)
            with open(store._path(job.job_hash), "w",
                      encoding="utf-8") as handle:
                handle.write("{ corrupt")
            assert store.get(job.job_hash) is None
        assert store.stats.quarantined == 2
        assert store.quarantine_count() == 1   # one file per hash


class TestDomainFallback:
    """The fm-cap -> polyhedra rung of the degradation ladder."""

    def test_injected_cap_blowup_yields_resource_limit(self):
        from repro.logic.entailment import reset_engine

        reset_engine()
        faults.configure([FaultSpec("fm-cap", match="fm")], seed=0)
        result = run_job(AnalysisJob.create("rdwalk", RDWALK,
                                            {"domain": "fm"}))
        assert result.status == "resource-limit"
        assert "constraint cap" in result.message
        assert any(event["kind"] == "fm-cap" for event in result.fault_events)

    def test_scheduler_retries_under_polyhedra(self):
        from repro.logic.entailment import reset_engine

        reset_engine()
        baseline = run_job(AnalysisJob.create("rdwalk", RDWALK,
                                              {"domain": "fm"}))
        assert baseline.status == "ok"
        reset_engine()
        # The fault only hits the fm backend: the fallback run is clean.
        faults.configure([FaultSpec("fm-cap", match="fm")], seed=0)
        job = AnalysisJob.create("rdwalk", RDWALK, {"domain": "fm"})
        report = run_batch([job], SchedulerConfig(workers=0))
        result = report.results[0]
        assert result.status == "ok"
        assert result.domain == "polyhedra"
        assert result.degraded == {"kind": "domain-fallback", "from": "fm",
                                   "to": "polyhedra",
                                   "reason": "resource-limit"}
        assert result.attempts == 2
        # Reported under the *original* job identity...
        assert result.job_hash == job.job_hash
        # ...with the byte-identical bound the fm run would have produced.
        assert result.bound == baseline.bound
        assert len(report.degraded) == 1

    def test_no_degrade_keeps_the_structured_failure(self):
        from repro.logic.entailment import reset_engine

        reset_engine()
        faults.configure([FaultSpec("fm-cap", match="fm")], seed=0)
        job = AnalysisJob.create("rdwalk", RDWALK, {"domain": "fm"})
        report = run_batch([job], SchedulerConfig(workers=0, degrade=False))
        assert report.results[0].status == "resource-limit"

    def test_degraded_results_are_cached_under_the_original_hash(self,
                                                                 tmp_path):
        from repro.logic.entailment import reset_engine

        reset_engine()
        store = ResultStore(str(tmp_path))
        faults.configure([FaultSpec("fm-cap", match="fm")], seed=0)
        job = AnalysisJob.create("rdwalk", RDWALK, {"domain": "fm"})
        run_batch([job], SchedulerConfig(workers=0, store=store))
        faults.disable()
        # Sound to cache: the polyhedra answer is byte-identical by the
        # domain-identity invariant, and the provenance rides along.
        cached = store.get(job.job_hash)
        assert cached is not None
        assert cached.degraded["kind"] == "domain-fallback"


class TestDegradedCacheability:
    def test_degree_fallback_results_are_not_cacheable(self):
        result = JobResult(name="t", job_hash="ab" * 32, status="ok",
                           degraded={"kind": "degree-fallback",
                                     "from": 2, "to": 1,
                                     "reason": "timeout"})
        assert not result.cacheable

    def test_domain_fallback_results_stay_cacheable(self):
        result = JobResult(name="t", job_hash="ab" * 32, status="ok",
                           degraded={"kind": "domain-fallback",
                                     "from": "fm", "to": "polyhedra",
                                     "reason": "resource-limit"})
        assert result.cacheable

    def test_schema_v4_record_round_trip(self):
        result = JobResult(name="t", job_hash="ab" * 32, status="ok",
                           attempts=3,
                           degraded={"kind": "domain-fallback"},
                           fault_events=[{"site": "pool",
                                          "kind": "worker-lost",
                                          "key": "ab:1"}])
        assert JobResult.from_record(result.to_record()) == result


class TestInjectedFaultType:
    def test_injected_faults_are_oserrors(self):
        assert issubclass(InjectedFault, OSError)

    def test_constraint_cap_is_a_memory_error(self):
        from repro.logic.fourier_motzkin import ConstraintCapExceeded

        assert issubclass(ConstraintCapExceeded, MemoryError)
