"""Tests for the asyncio analysis gateway (and graceful shutdown).

The gateway runs on a background thread with an ephemeral port
(:class:`~repro.service.gateway.GatewayThread`) and is exercised through
real TCP connections -- the same path production clients take.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.service.gateway import (AnalysisGateway, GatewayClient,
                                   GatewayThread, run_gateway)
from repro.service.store import ResultStore

RDWALK = """
proc main(x, n) {
    while (x < n) {
        prob(3/4) { x = x + 1; } else { x = x - 1; }
        tick(1);
    }
}
"""

#: A distinct (slower) program for backpressure tests.
SLOW_SOURCE = RDWALK.replace("tick(1)", "tick(2)")

_SRC_DIR = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, "src"))


def _variant(seed: int) -> str:
    """A semantically-identical program with a fresh content hash."""
    return RDWALK.replace("x + 1", f"x + 2 - 1 + {seed} - {seed}")


@pytest.fixture
def gateway(tmp_path):
    thread = GatewayThread(store=ResultStore(str(tmp_path)), workers=0,
                           hot_cache_size=8)
    host, port = thread.start()
    yield host, port, thread.gateway
    thread.stop()


class TestOps:
    def test_ping(self, gateway):
        host, port, _ = gateway
        with GatewayClient(host, port) as client:
            assert client.ping() == {"op": "ping", "ok": True}

    def test_health_shape(self, gateway):
        host, port, _ = gateway
        with GatewayClient(host, port) as client:
            health = client.health()
        assert health["ok"] is True
        assert health["pool"] == {"workers": 0, "inline": True}
        assert health["hot_cache"]["max_entries"] == 8
        assert health["address"][1] == port

    def test_stats_shape(self, gateway):
        host, port, _ = gateway
        with GatewayClient(host, port) as client:
            client.analyze(RDWALK, name="rdwalk")
            stats = client.stats()
        assert stats["gateway"]["analyses"] == 1
        assert stats["queue_limit"] >= 1
        assert stats["store"]["writes"] == 1

    def test_unknown_op_is_an_error(self, gateway):
        host, port, _ = gateway
        with GatewayClient(host, port) as client:
            response = client.request({"op": "frobnicate", "id": 9})
        assert "unknown op" in response["error"]
        assert response["id"] == 9

    def test_malformed_line_is_an_error_not_a_crash(self, gateway):
        host, port, _ = gateway
        with GatewayClient(host, port) as client:
            client._writer.write("this is not json\n")
            client._writer.flush()
            response = client.read()
            assert "error" in response
            # The connection survives the bad line.
            assert client.ping()["ok"] is True

    def test_missing_source_is_an_error(self, gateway):
        host, port, _ = gateway
        with GatewayClient(host, port) as client:
            response = client.request({"op": "analyze"})
        assert "source" in response["error"]


class TestTiers:
    def test_cold_then_memory(self, gateway):
        host, port, _ = gateway
        with GatewayClient(host, port) as client:
            cold = client.analyze(RDWALK, name="rdwalk")
            warm = client.analyze(RDWALK, name="rdwalk")
        assert cold["status"] == "ok" and cold["tier"] == "computed"
        assert not cold["cached"]
        assert warm["tier"] == "memory" and warm["cached"]
        assert warm["result"]["bound"] == cold["result"]["bound"]

    def test_store_tier_without_hot_cache(self, tmp_path):
        thread = GatewayThread(store=ResultStore(str(tmp_path)), workers=0,
                               hot_cache_size=0)
        host, port = thread.start()
        try:
            with GatewayClient(host, port) as client:
                cold = client.analyze(RDWALK)
                again = client.analyze(RDWALK)
            assert cold["tier"] == "computed"
            assert again["tier"] == "store" and again["cached"]
        finally:
            thread.stop()

    def test_result_is_relabelled_per_request(self, gateway):
        host, port, _ = gateway
        with GatewayClient(host, port) as client:
            first = client.analyze(RDWALK, name="alpha")
            second = client.analyze(RDWALK, name="beta")
        assert first["result"]["name"] == "alpha"
        assert second["result"]["name"] == "beta"
        assert second["tier"] == "memory"

    def test_request_ids_echo_and_pipeline(self, gateway):
        host, port, _ = gateway
        with GatewayClient(host, port) as client:
            client.send({"op": "analyze", "source": RDWALK, "id": "a"})
            client.send({"op": "ping", "id": "b"})
            responses = {client.read()["id"]: None for _ in range(2)}
        # Both requests answered, matched by id (completion order may vary).
        assert set(responses) == {"a", "b"}


class TestCoalescing:
    def test_duplicate_storm_costs_one_analysis(self, gateway):
        host, port, gw = gateway
        source = _variant(1)
        clients = 8
        responses = [None] * clients
        failures = []
        barrier = threading.Barrier(clients)

        def storm(index):
            try:
                with GatewayClient(host, port) as client:
                    barrier.wait()
                    responses[index] = client.analyze(source, name="storm")
            except BaseException as exc:  # pragma: no cover - failure path
                failures.append(exc)

        threads = [threading.Thread(target=storm, args=(index,))
                   for index in range(clients)]
        before = gw.stats.analyses
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
        assert all(response["status"] == "ok" for response in responses)
        assert gw.stats.analyses - before == 1
        distinct = {json.dumps(response["result"], sort_keys=True)
                    for response in responses}
        assert len(distinct) == 1

    def test_duplicates_within_one_batch_coalesce(self, gateway):
        host, port, gw = gateway
        source = _variant(2)
        before = gw.stats.analyses
        with GatewayClient(host, port) as client:
            messages = list(client.batch(
                [{"source": source}, {"source": source},
                 {"source": source}], request_id=5))
        results = [message for message in messages
                   if message["op"] == "batch-result"]
        done = messages[-1]
        assert done["op"] == "batch-done" and done["jobs"] == 3
        assert done["id"] == 5
        assert sorted(message["index"] for message in results) == [0, 1, 2]
        assert all(message["status"] == "ok" for message in results)
        assert gw.stats.analyses - before == 1


class TestBatchStreaming:
    def test_batch_streams_results_then_summary(self, gateway):
        host, port, _ = gateway
        with GatewayClient(host, port) as client:
            messages = list(client.batch([
                {"source": RDWALK, "name": "good"},
                {"source": "proc main( {", "name": "broken"},
            ]))
        assert [message["op"] for message in messages[:-1]] \
            == ["batch-result"] * 2
        statuses = {message["index"]: message["status"]
                    for message in messages[:-1]}
        assert statuses[0] == "ok" and statuses[1] == "parse-error"
        done = messages[-1]
        assert done["op"] == "batch-done"
        assert done["jobs"] == 2 and done["failed"] == 1

    def test_empty_batch_is_an_error(self, gateway):
        host, port, _ = gateway
        with GatewayClient(host, port) as client:
            response = client.request({"op": "batch", "jobs": []})
        assert "jobs" in response["error"]


class TestBackpressure:
    def test_queue_full_answers_busy_with_retry_after(self, tmp_path):
        thread = GatewayThread(store=ResultStore(str(tmp_path)), workers=0,
                               queue_limit=1, hot_cache_size=8)
        host, port = thread.start()
        try:
            slow_response = {}

            def slow_request():
                with GatewayClient(host, port) as client:
                    slow_response.update(client.analyze(SLOW_SOURCE))

            slow_thread = threading.Thread(target=slow_request)
            slow_thread.start()
            # Give the slow job time to be admitted (pending == limit).
            deadline = time.time() + 5.0
            while thread.gateway._pending < 1 and time.time() < deadline:
                time.sleep(0.005)
            with GatewayClient(host, port) as client:
                busy = client.analyze(_variant(3))
            slow_thread.join()
            assert busy["status"] == "busy"
            assert busy["retry_after"] > 0
            assert "retry" in busy["error"]
            assert slow_response["status"] == "ok"
            assert thread.gateway.stats.busy_rejections == 1
        finally:
            thread.stop()


class TestGracefulShutdown:
    def test_shutdown_op_drains_inflight_requests(self, tmp_path):
        thread = GatewayThread(store=ResultStore(str(tmp_path)), workers=0,
                               hot_cache_size=8)
        host, port = thread.start()
        slow_response = {}

        def slow_request():
            with GatewayClient(host, port) as client:
                slow_response.update(client.analyze(SLOW_SOURCE))

        slow_thread = threading.Thread(target=slow_request)
        slow_thread.start()
        deadline = time.time() + 5.0
        while thread.gateway._pending < 1 and time.time() < deadline:
            time.sleep(0.005)
        with GatewayClient(host, port) as client:
            assert client.shutdown()["ok"] is True
        slow_thread.join(timeout=30)
        # The in-flight analysis still completed and was delivered.
        assert slow_response["status"] == "ok"
        thread._thread.join(timeout=30)
        assert not thread._thread.is_alive()
        # And its store write landed before the drain finished.
        assert ResultStore(str(tmp_path)).disk_stats()["entries"] == 1
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=1)

    def test_bind_failure_exits_unavailable(self):
        from repro.exitcodes import EXIT_UNAVAILABLE

        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        try:
            port = blocker.getsockname()[1]
            code = run_gateway(workers=0, port=port, announce=False)
            assert code == EXIT_UNAVAILABLE
        finally:
            blocker.close()


class TestValidation:
    def test_timeout_requires_workers(self):
        with pytest.raises(ValueError):
            AnalysisGateway(workers=0, timeout=1.0)

    def test_queue_limit_must_be_positive(self):
        with pytest.raises(ValueError):
            AnalysisGateway(queue_limit=0)


class TestStdioGracefulShutdown:
    """The stdio ``repro serve`` loop drains on SIGINT/SIGTERM (exit 0)."""

    @pytest.mark.parametrize("signum", [signal.SIGINT, signal.SIGTERM])
    def test_signal_while_idle_exits_zero(self, signum):
        env = {**os.environ, "PYTHONPATH": _SRC_DIR}
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--no-cache"],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE, env=env,
            text=True)
        try:
            # Prove the loop is up before signalling it.
            process.stdin.write('{"op": "ping"}\n')
            process.stdin.flush()
            assert json.loads(process.stdout.readline())["ok"] is True
            process.send_signal(signum)
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup path
                process.kill()
