"""Tests for the hot in-memory LRU tier above the result store."""

import threading

import pytest

from repro.service.cache import DEFAULT_HOT_CACHE_SIZE, HotResultCache
from repro.service.jobs import JobResult


def _result(index: int, status: str = "ok") -> JobResult:
    return JobResult(name=f"job-{index}", job_hash=f"{index:064x}",
                     status=status)


class TestBasics:
    def test_put_get_round_trip(self):
        cache = HotResultCache(4)
        result = _result(1)
        assert cache.put(result)
        assert cache.get(result.job_hash) is result
        assert cache.stats.hits == 1 and cache.stats.misses == 0

    def test_miss_counts(self):
        cache = HotResultCache(4)
        assert cache.get("f" * 64) is None
        assert cache.stats.misses == 1 and cache.stats.hit_rate() == 0.0

    def test_non_cacheable_statuses_are_rejected(self):
        cache = HotResultCache(4)
        for status in ("timeout", "cancelled", "error", "analysis-error"):
            assert not cache.put(_result(1, status=status))
        assert len(cache) == 0 and cache.stats.puts == 0

    def test_deterministic_failures_are_cached(self):
        # Same contract as the disk store: no-bound and parse-error are
        # deterministic properties of the job content.
        cache = HotResultCache(4)
        assert cache.put(_result(1, status="no-bound"))
        assert cache.put(_result(2, status="parse-error"))
        assert len(cache) == 2

    def test_max_entries_must_be_positive(self):
        with pytest.raises(ValueError):
            HotResultCache(0)

    def test_default_size(self):
        assert HotResultCache().max_entries == DEFAULT_HOT_CACHE_SIZE


class TestEviction:
    def test_bound_is_enforced_lru_first(self):
        cache = HotResultCache(3)
        results = [_result(index) for index in range(4)]
        for result in results[:3]:
            cache.put(result)
        cache.put(results[3])   # evicts results[0], the least recent
        assert len(cache) == 3
        assert cache.get(results[0].job_hash) is None
        assert cache.get(results[3].job_hash) is results[3]
        assert cache.stats.evictions == 1

    def test_get_refreshes_recency(self):
        cache = HotResultCache(2)
        first, second, third = _result(1), _result(2), _result(3)
        cache.put(first)
        cache.put(second)
        cache.get(first.job_hash)   # first is now the most recent
        cache.put(third)            # evicts second, not first
        assert first.job_hash in cache
        assert second.job_hash not in cache

    def test_reinsert_refreshes_without_counting_a_put(self):
        cache = HotResultCache(2)
        first, second, third = _result(1), _result(2), _result(3)
        cache.put(first)
        cache.put(second)
        cache.put(first)            # refresh, not a new insert
        assert cache.stats.puts == 2
        cache.put(third)            # evicts second
        assert first.job_hash in cache
        assert second.job_hash not in cache


class TestIntrospection:
    def test_clear_reports_dropped_count(self):
        cache = HotResultCache(8)
        for index in range(5):
            cache.put(_result(index))
        assert cache.clear() == 5
        assert len(cache) == 0

    def test_as_dict_shape(self):
        cache = HotResultCache(8)
        cache.put(_result(1))
        cache.get(_result(1).job_hash)
        cache.get("f" * 64)
        snapshot = cache.as_dict()
        assert snapshot["entries"] == 1
        assert snapshot["max_entries"] == 8
        assert snapshot["hits"] == 1 and snapshot["misses"] == 1
        assert snapshot["hit_rate"] == 0.5


class TestThreadSafety:
    def test_concurrent_mixed_operations_stay_bounded(self):
        cache = HotResultCache(16)
        results = [_result(index) for index in range(64)]
        failures = []

        def worker(offset: int) -> None:
            try:
                for round_index in range(200):
                    result = results[(offset + round_index) % len(results)]
                    cache.put(result)
                    cache.get(result.job_hash)
                    len(cache)
            except BaseException as exc:  # pragma: no cover - failure path
                failures.append(exc)

        threads = [threading.Thread(target=worker, args=(offset,))
                   for offset in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
        assert len(cache) <= 16
