"""Tests for repro.service.jobs: hashing, execution, serialisation."""

from fractions import Fraction

import pytest

from repro.bench.registry import get_benchmark
from repro.service.jobs import (SCHEMA_VERSION, AnalysisJob, JobResult,
                                bound_from_payload, canonical_source,
                                job_from_benchmark, job_from_file, run_job)

RDWALK = """
proc main(x, n) {
    while (x < n) {
        prob(3/4) { x = x + 1; } else { x = x - 1; }
        tick(1);
    }
}
"""

NO_BOUND = "proc main(x) { assume(x >= 1); while (x > 0) { tick(1); } }"


class TestJobHash:
    def test_hash_is_stable(self):
        a = AnalysisJob.create("a", RDWALK, {"max_degree": 1})
        b = AnalysisJob.create("b", RDWALK, {"max_degree": 1})
        # The name is presentation, not content.
        assert a.job_hash == b.job_hash

    def test_hash_ignores_trailing_whitespace_and_crlf(self):
        messy = RDWALK.replace("\n", "  \r\n") + "\n\n\n"
        assert AnalysisJob.create("a", messy).job_hash \
            == AnalysisJob.create("a", RDWALK).job_hash

    def test_hash_changes_with_source(self):
        other = RDWALK.replace("tick(1)", "tick(2)")
        assert AnalysisJob.create("a", other).job_hash \
            != AnalysisJob.create("a", RDWALK).job_hash

    def test_hash_changes_with_options(self):
        assert AnalysisJob.create("a", RDWALK, {"max_degree": 2}).job_hash \
            != AnalysisJob.create("a", RDWALK, {"max_degree": 1}).job_hash

    def test_option_order_is_canonical(self):
        a = AnalysisJob.create("a", RDWALK,
                               {"max_degree": 2, "auto_degree": False})
        b = AnalysisJob.create("a", RDWALK,
                               {"auto_degree": False, "max_degree": 2})
        assert a.job_hash == b.job_hash

    def test_canonical_source_ends_with_newline(self):
        assert canonical_source("proc main() { skip; }").endswith("}\n")


class TestRunJob:
    def test_ok_job(self):
        result = run_job(AnalysisJob.create("rdwalk", RDWALK))
        assert result.status == "ok" and result.success
        assert result.bound_pretty == "2*|[x, n]|"
        assert result.wall_seconds > 0
        assert result.lp_variables > 0
        assert result.certificate is not None
        assert result.certificate["points"]
        assert result.engine["queries"] > 0

    def test_parse_error_job(self):
        result = run_job(AnalysisJob.create("bad", "proc main( {"))
        assert result.status == "parse-error"
        assert not result.success
        assert result.bound is None
        assert result.message

    def test_no_bound_job(self):
        result = run_job(AnalysisJob.create(
            "diverges", NO_BOUND, {"auto_degree": False}))
        assert result.status == "no-bound"
        assert result.bound is None
        assert "infeasible" in result.message

    def test_record_round_trip(self):
        result = run_job(AnalysisJob.create("rdwalk", RDWALK))
        record = result.to_record()
        assert record["schema"] == SCHEMA_VERSION
        restored = JobResult.from_record(record)
        assert restored == result


class TestBoundPayload:
    def test_bound_reconstruction_evaluates_identically(self):
        result = run_job(AnalysisJob.create("rdwalk", RDWALK))
        bound = result.expected_bound()
        assert bound.pretty() == "2*|[x, n]|"
        assert bound.evaluate({"x": 3, "n": 10}) == Fraction(14)
        assert bound.evaluate({"x": 12, "n": 10}) == 0

    def test_polynomial_bound_reconstruction(self):
        bench = get_benchmark("pol04")
        result = run_job(job_from_benchmark(bench))
        assert result.success
        bound = result.expected_bound()
        direct = bench.build()
        from repro.core.analyzer import analyze_program

        expected = analyze_program(direct, **bench.analyzer_options).bound
        assert bound.pretty() == expected.pretty()
        for x in (0, 5, 17):
            assert bound.evaluate({"x": x}) == expected.evaluate({"x": x})

    def test_payload_is_json_clean(self):
        import json

        result = run_job(AnalysisJob.create("rdwalk", RDWALK))
        encoded = json.dumps(result.to_record())
        decoded = JobResult.from_record(json.loads(encoded))
        assert bound_from_payload(decoded.bound).pretty() == "2*|[x, n]|"


class TestJobFactories:
    def test_job_from_file(self, tmp_path):
        path = tmp_path / "walk.imp"
        path.write_text(RDWALK)
        job = job_from_file(str(path), name="walk")
        assert job.name == "walk"
        assert job.job_hash == AnalysisJob.create("walk", RDWALK).job_hash

    def test_job_from_benchmark_matches_direct_analysis(self):
        bench = get_benchmark("ber")
        result = run_job(job_from_benchmark(bench))
        from repro.core.analyzer import analyze_program

        direct = analyze_program(bench.build(), **bench.analyzer_options)
        assert result.bound_pretty == direct.bound.pretty()


class TestDomainStamping:
    """Jobs resolve their abstract domain at creation, not at run time."""

    def test_jobs_are_stamped_with_the_active_domain(self):
        from repro.logic.entailment import active_domain

        job = AnalysisJob.create("t", "proc main(x) { tick(1); }")
        assert job.options_dict["domain"] == active_domain()

    def test_env_default_domain_participates_in_the_hash(self, monkeypatch):
        source = "proc main(x) { tick(1); }"
        monkeypatch.setenv("REPRO_DOMAIN", "fm")
        under_fm = AnalysisJob.create("t", source)
        monkeypatch.setenv("REPRO_DOMAIN", "polyhedra")
        under_poly = AnalysisJob.create("t", source)
        # Two processes with different $REPRO_DOMAIN defaults must never
        # share one content hash -- otherwise the store would serve one
        # backend's cached results to the other.
        assert under_fm.job_hash != under_poly.job_hash
        assert under_fm.options_dict["domain"] == "fm"
        assert under_poly.options_dict["domain"] == "polyhedra"

    def test_explicit_domain_wins_over_the_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_DOMAIN", "polyhedra")
        job = AnalysisJob.create("t", "proc main(x) { tick(1); }",
                                 {"domain": "fm"})
        assert job.options_dict["domain"] == "fm"

    def test_job_from_benchmark_accepts_a_domain(self, monkeypatch):
        from repro.bench.registry import get_benchmark

        bench = get_benchmark("ber")
        monkeypatch.setenv("REPRO_DOMAIN", "fm")
        assert job_from_benchmark(bench).options_dict["domain"] == "fm"
        pinned = job_from_benchmark(bench, domain="polyhedra")
        assert pinned.options_dict["domain"] == "polyhedra"
