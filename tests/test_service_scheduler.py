"""Tests for the multiprocess batch scheduler.

Covers the ISSUE-2 checklist: determinism across worker counts, store
integration (second run served from cache), the timeout/cancellation path,
and entailment-engine state isolation across worker processes.
"""

import multiprocessing
import os
import time

import pytest

from repro.bench.registry import select_benchmarks
from repro.logic.entailment import get_engine
from repro.service import scheduler as scheduler_module
from repro.service.jobs import AnalysisJob, JobResult, job_from_benchmark
from repro.service.scheduler import (SchedulerConfig, default_worker_count,
                                     run_batch, run_jobs)
from repro.service.store import ResultStore

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

RDWALK = """
proc main(x, n) {
    while (x < n) {
        prob(3/4) { x = x + 1; } else { x = x - 1; }
        tick(1);
    }
}
"""


def _suite_jobs(count=4):
    benchmarks = select_benchmarks(["@linear"])[:count]
    return [job_from_benchmark(bench) for bench in benchmarks]


def _sleepy_job(job, attempt=1, claim_path=None):
    # Module-level so the pool can pickle it by reference; under fork the
    # worker resolves it to this (monkeypatch-visible) definition.
    time.sleep(8)
    return JobResult(name=job.name, job_hash=job.job_hash,
                     status="ok")  # pragma: no cover


class TestDeterminism:
    def test_same_results_any_worker_count(self):
        jobs = _suite_jobs(4)
        runs = {workers: run_jobs(jobs, workers=workers)
                for workers in (0, 1, 2)}
        baseline = [(r.name, r.status, r.bound_pretty, r.degree)
                    for r in runs[0]]
        for workers in (1, 2):
            assert [(r.name, r.status, r.bound_pretty, r.degree)
                    for r in runs[workers]] == baseline

    def test_results_in_input_order(self):
        jobs = list(reversed(_suite_jobs(4)))
        results = run_jobs(jobs, workers=2)
        assert [r.name for r in results] == [j.name for j in jobs]

    def test_duplicate_jobs_execute_once(self, tmp_path):
        job = AnalysisJob.create("rdwalk", RDWALK)
        twin = AnalysisJob.create("rdwalk-twin", RDWALK)
        assert job.job_hash == twin.job_hash
        store = ResultStore(str(tmp_path))
        report = run_batch([job, twin],
                           SchedulerConfig(workers=0, store=store))
        assert [r.status for r in report.results] == ["ok", "ok"]
        # One execution, one store record, results for both inputs --
        # each reported under its own job's name.
        assert store.stats.writes == 1
        assert [r.name for r in report.results] == ["rdwalk", "rdwalk-twin"]

    def test_store_hit_reports_the_requesting_jobs_name(self, tmp_path):
        store = ResultStore(str(tmp_path))
        run_batch([AnalysisJob.create("original", RDWALK)],
                  SchedulerConfig(workers=0, store=store))
        report = run_batch([AnalysisJob.create("renamed", RDWALK)],
                           SchedulerConfig(workers=0, store=store))
        assert report.cache_hits == 1
        assert report.results[0].name == "renamed"

    def test_parallel_matches_inline_bounds_exactly(self):
        jobs = _suite_jobs(6)
        inline = run_jobs(jobs, workers=0)
        pooled = run_jobs(jobs, workers=3)
        assert [r.bound_pretty for r in inline] \
            == [r.bound_pretty for r in pooled]


class TestStoreIntegration:
    def test_second_run_served_from_store(self, tmp_path):
        jobs = _suite_jobs(4)
        store = ResultStore(str(tmp_path))
        first = run_batch(jobs, SchedulerConfig(workers=0, store=store))
        assert first.cache_hits == 0 and first.executed == len(jobs)
        second = run_batch(jobs, SchedulerConfig(workers=0, store=store))
        assert second.cache_hits == len(jobs) and second.executed == 0
        assert [r.bound_pretty for r in second.results] \
            == [r.bound_pretty for r in first.results]

    def test_refresh_bypasses_store_reads(self, tmp_path):
        jobs = _suite_jobs(2)
        store = ResultStore(str(tmp_path))
        run_batch(jobs, SchedulerConfig(workers=0, store=store))
        refreshed = run_batch(jobs, SchedulerConfig(workers=0, store=store,
                                                    refresh=True))
        assert refreshed.cache_hits == 0 and refreshed.executed == 2

    def test_store_disabled(self):
        jobs = _suite_jobs(2)
        report = run_batch(jobs, SchedulerConfig(workers=0, store=None))
        assert report.cache_hits == 0


class TestTimeouts:
    def test_timeout_requires_workers(self):
        with pytest.raises(ValueError):
            run_batch([], SchedulerConfig(workers=0, timeout=1.0))

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method "
                        "(monkeypatched seam must reach the worker)")
    def test_timeout_and_cancellation_path(self, monkeypatch):
        monkeypatch.setattr(scheduler_module, "_execute_job", _sleepy_job)
        jobs = [AnalysisJob.create("slow-a", RDWALK),
                AnalysisJob.create("slow-b", RDWALK.replace("3/4", "2/3"))]
        start = time.monotonic()
        # degrade=False: this test pins the raw timeout/cancellation
        # mechanics; the degradation ladder's timeout retry is covered by
        # the chaos suite.
        results = run_jobs(jobs, workers=1, timeout=1.0, degrade=False)
        elapsed = time.monotonic() - start
        assert elapsed < 6
        # One worker: the first job runs (and times out), the second is
        # still queued and gets cancelled.
        assert results[0].status == "timeout"
        assert results[1].status in ("timeout", "cancelled")
        assert all(not r.success for r in results)

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_fast_jobs_unaffected_by_timeout(self):
        jobs = _suite_jobs(2)
        results = run_jobs(jobs, workers=2, timeout=120.0)
        assert all(r.status == "ok" for r in results)


class TestWorkerIsolation:
    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_workers_have_fresh_engines_and_parent_is_untouched(self):
        jobs = _suite_jobs(4)
        parent_engine = get_engine()
        # Warm the parent cache so leakage in either direction would show.
        run_jobs(jobs[:1], workers=0)
        before = parent_engine.stats.snapshot()
        results = run_jobs(jobs, workers=2)
        after = parent_engine.stats.snapshot()
        # Worker analyses never touch the parent's engine counters.
        assert after == before
        # And the work really happened in other processes.
        pids = {r.worker_pid for r in results}
        assert os.getpid() not in pids
        assert len(pids) >= 1
        # Every worker ran real queries against its own engine.
        assert all(r.engine["queries"] > 0 for r in results)

    def test_inline_jobs_run_in_this_process(self):
        results = run_jobs(_suite_jobs(1), workers=0)
        assert results[0].worker_pid == os.getpid()


class TestMisc:
    def test_default_worker_count_positive(self):
        assert default_worker_count() >= 1

    def test_empty_batch(self):
        report = run_batch([], SchedulerConfig(workers=0))
        assert report.outcomes == [] and report.cache_hit_rate() == 0.0

    def test_config_and_overrides_are_exclusive(self):
        with pytest.raises(TypeError):
            run_batch([], SchedulerConfig(), workers=2)

    def test_parse_error_reported_not_raised(self):
        results = run_jobs([AnalysisJob.create("bad", "proc main( {")],
                           workers=0)
        assert results[0].status == "parse-error"


class TestInvalidDomainSurvival:
    """An unknown abstract domain degrades to structured errors, not a dead pool."""

    def test_pool_survives_invalid_env_domain(self, monkeypatch):
        monkeypatch.setenv("REPRO_DOMAIN", "octagons")
        jobs = [AnalysisJob.create("bad-domain",
                                   "proc main(x) { tick(1); }")]
        assert jobs[0].options_dict["domain"] == "octagons"
        results = scheduler_module.run_jobs(jobs, workers=1)
        # The worker initializer must not take the pool down; the job comes
        # back as a structured error naming the unknown domain.
        assert results[0].status == "error"
        assert "octagons" in results[0].message

    def test_inline_invalid_domain_matches_pool_behaviour(self, monkeypatch):
        monkeypatch.setenv("REPRO_DOMAIN", "octagons")
        jobs = [AnalysisJob.create("bad-domain",
                                   "proc main(x) { tick(1); }")]
        results = scheduler_module.run_jobs(jobs, workers=0)
        assert results[0].status == "error"
        assert "octagons" in results[0].message
