"""Tests for the JSON-lines analysis server."""

import io
import json

from repro.service.server import AnalysisServer
from repro.service.store import ResultStore

RDWALK = """
proc main(x, n) {
    while (x < n) {
        prob(3/4) { x = x + 1; } else { x = x - 1; }
        tick(1);
    }
}
"""


def _run(requests, store=None, workers=0):
    server = AnalysisServer(store=store, workers=workers)
    stdin = io.StringIO("\n".join(json.dumps(r) for r in requests) + "\n")
    stdout = io.StringIO()
    server.serve(stdin, stdout)
    return [json.loads(line) for line in stdout.getvalue().splitlines()]


class TestProtocol:
    def test_ping(self):
        responses = _run([{"op": "ping"}])
        assert responses == [{"op": "ping", "ok": True}]

    def test_analyze_request(self):
        responses = _run([{"id": 7, "source": RDWALK}])
        (response,) = responses
        assert response["id"] == 7
        assert response["status"] == "ok"
        assert response["result"]["bound"]["pretty"] == "2*|[x, n]|"

    def test_analyze_with_options(self):
        responses = _run([{"source": RDWALK,
                           "options": {"max_degree": 1,
                                       "auto_degree": False}}])
        assert responses[0]["status"] == "ok"

    def test_parse_error_is_structured(self):
        responses = _run([{"source": "proc main( {"}])
        assert responses[0]["status"] == "parse-error"

    def test_malformed_line_reports_error(self):
        server = AnalysisServer()
        stdin = io.StringIO("this is not json\n")
        stdout = io.StringIO()
        server.serve(stdin, stdout)
        assert "error" in json.loads(stdout.getvalue())

    def test_missing_source_reports_error(self):
        responses = _run([{"op": "analyze"}])
        assert "error" in responses[0]

    def test_unknown_op(self):
        responses = _run([{"op": "frobnicate"}])
        assert "error" in responses[0]

    def test_shutdown_stops_the_loop(self):
        responses = _run([{"op": "shutdown", "id": 1},
                          {"op": "ping"}])           # never reached
        assert responses == [{"op": "shutdown", "ok": True, "id": 1}]

    def test_blank_lines_are_skipped(self):
        server = AnalysisServer()
        stdin = io.StringIO("\n\n")
        stdout = io.StringIO()
        assert server.serve(stdin, stdout) == 0


class TestStoreAndBatch:
    def test_store_serves_repeat_requests(self, tmp_path):
        store = ResultStore(str(tmp_path))
        responses = _run([{"id": 1, "source": RDWALK},
                          {"id": 2, "source": RDWALK}], store=store)
        assert [r["cached"] for r in responses] == [False, True]
        assert responses[0]["result"]["bound"] \
            == responses[1]["result"]["bound"]

    def test_batch_request(self, tmp_path):
        store = ResultStore(str(tmp_path))
        request = {"op": "batch", "id": 3, "jobs": [
            {"source": RDWALK, "name": "a"},
            {"source": RDWALK.replace("3/4", "4/5"), "name": "b"},
        ]}
        (response,) = _run([request], store=store)
        assert response["id"] == 3
        assert [r["status"] for r in response["results"]] == ["ok", "ok"]
        assert response["cache_hits"] == 0
        # Second round trips entirely through the store.
        (again,) = _run([request], store=store)
        assert again["cache_hits"] == 2

    def test_stats_op(self, tmp_path):
        store = ResultStore(str(tmp_path))
        responses = _run([{"source": RDWALK}, {"op": "stats"}], store=store)
        stats = responses[1]
        assert stats["requests_served"] == 1
        assert stats["store"]["writes"] == 1
        assert "queries" in stats["engine"]
