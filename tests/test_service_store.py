"""Tests for the persistent content-addressed result store."""

import json
import os

from repro.service.jobs import AnalysisJob, JobResult, run_job
from repro.service.store import ResultStore

RDWALK = """
proc main(x, n) {
    while (x < n) {
        prob(3/4) { x = x + 1; } else { x = x - 1; }
        tick(1);
    }
}
"""


def _result(status="ok", job_hash="ab" + "0" * 62, **extra) -> JobResult:
    return JobResult(name="t", job_hash=job_hash, status=status, **extra)


class TestRoundTrip:
    def test_put_get_round_trip(self, tmp_path):
        store = ResultStore(str(tmp_path))
        result = run_job(AnalysisJob.create("rdwalk", RDWALK))
        store.put(result)
        fetched = store.get(result.job_hash)
        assert fetched == result
        assert fetched.expected_bound().pretty() == "2*|[x, n]|"
        assert store.stats.writes == 1 and store.stats.hits == 1

    def test_miss_on_unknown_hash(self, tmp_path):
        store = ResultStore(str(tmp_path))
        assert store.get("f" * 64) is None
        assert store.stats.misses == 1

    def test_cache_hit_on_unchanged_source(self, tmp_path):
        store = ResultStore(str(tmp_path))
        job = AnalysisJob.create("rdwalk", RDWALK)
        store.put(run_job(job))
        # Reformatting does not change the canonical hash.
        reformatted = AnalysisJob.create("other-name",
                                         RDWALK.replace("\n", "   \n"))
        assert store.get(reformatted.job_hash) is not None

    def test_miss_on_changed_source(self, tmp_path):
        store = ResultStore(str(tmp_path))
        job = AnalysisJob.create("rdwalk", RDWALK)
        store.put(run_job(job))
        changed = AnalysisJob.create("rdwalk", RDWALK.replace("3/4", "2/3"))
        assert store.get(changed.job_hash) is None


class TestCacheability:
    def test_non_cacheable_statuses_are_not_stored(self, tmp_path):
        store = ResultStore(str(tmp_path))
        for status in ("timeout", "cancelled", "error", "analysis-error"):
            store.put(_result(status=status))
        assert len(store) == 0 and store.stats.writes == 0

    def test_no_bound_and_parse_error_are_cached(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put(_result(status="no-bound", job_hash="aa" + "1" * 62))
        store.put(_result(status="parse-error", job_hash="bb" + "2" * 62))
        assert len(store) == 2


class TestRobustness:
    def test_corrupt_record_is_a_miss(self, tmp_path):
        store = ResultStore(str(tmp_path))
        result = _result()
        store.put(result)
        path = store._path(result.job_hash)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{ not json")
        assert store.get(result.job_hash) is None
        assert store.stats.invalid == 1
        # And a re-put repairs it.
        store.put(result)
        assert store.get(result.job_hash) == result

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        store = ResultStore(str(tmp_path))
        result = _result()
        store.put(result)
        path = store._path(result.job_hash)
        record = json.loads(open(path, encoding="utf-8").read())
        record["schema"] = 999
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(record, handle)
        assert store.get(result.job_hash) is None

    def test_no_temp_files_left_behind(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put(_result())
        leftovers = [name for _, _, files in os.walk(tmp_path)
                     for name in files if name.startswith(".tmp-")]
        assert leftovers == []

    def test_clear(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put(_result(job_hash="cc" + "3" * 62))
        store.put(_result(job_hash="dd" + "4" * 62))
        assert store.clear() == 2
        assert len(store) == 0

    def test_iter_hashes_sorted(self, tmp_path):
        store = ResultStore(str(tmp_path))
        hashes = ["cc" + "3" * 62, "aa" + "4" * 62, "bb" + "5" * 62]
        for job_hash in hashes:
            store.put(_result(job_hash=job_hash))
        assert list(store.iter_hashes()) == sorted(hashes)


class TestDomainIsolation:
    """Results cached under one abstract domain are never served to the other."""

    def test_domain_results_never_alias(self, tmp_path):
        store = ResultStore(str(tmp_path))
        fm_job = AnalysisJob.create("rdwalk", RDWALK, {"domain": "fm"})
        poly_job = AnalysisJob.create("rdwalk", RDWALK, {"domain": "polyhedra"})
        assert fm_job.job_hash != poly_job.job_hash

        fm_result = run_job(fm_job)
        store.put(fm_result)
        assert fm_result.domain == "fm"
        # The polyhedra job misses: the fm record cannot leak across.
        assert store.get(poly_job.job_hash) is None
        assert store.stats.misses == 1

        poly_result = run_job(poly_job)
        store.put(poly_result)
        assert poly_result.domain == "polyhedra"
        fetched = store.get(poly_job.job_hash)
        assert fetched is not None
        assert fetched.domain == "polyhedra"
        # Exact backends: distinct records, identical payloads.
        assert fetched.bound == fm_result.bound

    def test_engine_fingerprint_tracks_domain(self):
        from repro.logic.entailment import engine_fingerprint

        fm_print = engine_fingerprint("fm")
        poly_print = engine_fingerprint("polyhedra")
        assert fm_print["domain"] == "fm"
        assert poly_print["domain"] == "polyhedra"
        assert fm_print["engine_id"] != poly_print["engine_id"]
