"""Multi-process stress tests for the shared result store.

The gateway architecture points many gateway/worker processes at one
store root; these tests are the discipline's proof: concurrent writers
lose no records, concurrent readers never see a torn record, and
quarantine under injected corruption stays correct (and race-free) when
several processes hit the same corrupt record at once.
"""

import multiprocessing
import os

import pytest

from repro.service import faults
from repro.service.faults import FaultSpec
from repro.service.jobs import JobResult
from repro.service.store import ResultStore

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="needs the fork start method (children inherit the test's "
           "fault registry and closures)")

_CTX = multiprocessing.get_context("fork") \
    if "fork" in multiprocessing.get_all_start_methods() else None

#: One contended hash every writer rewrites and every reader polls.
CONTENDED_HASH = "ff" * 32

WRITERS = 4
RECORDS_PER_WRITER = 20
READERS = 3


def _result(index: int, message: str = "") -> JobResult:
    return JobResult(name=f"job-{index}", job_hash=f"{index:064x}",
                     status="ok", message=message)


def _writer_main(root: str, writer_index: int, queue) -> None:
    store = ResultStore(root)
    try:
        base = writer_index * RECORDS_PER_WRITER
        for offset in range(RECORDS_PER_WRITER):
            store.put(_result(base + offset, message=f"w{writer_index}"))
            # Hammer the contended record between every private write.
            store.put(JobResult(name="contended", job_hash=CONTENDED_HASH,
                                status="ok",
                                message=f"w{writer_index}/{offset}"))
        queue.put(("ok", writer_index))
    except BaseException as exc:  # pragma: no cover - failure path
        queue.put(("error", f"writer {writer_index}: {exc!r}"))


def _reader_main(root: str, reader_index: int, total: int, queue) -> None:
    store = ResultStore(root)
    try:
        valid = misses = 0
        for round_index in range(6):
            for index in range(total):
                fetched = store.get(f"{index:064x}")
                if fetched is None:
                    misses += 1
                else:
                    # A torn read would already have raised inside get();
                    # double-check the record is the one we asked for.
                    assert fetched.job_hash == f"{index:064x}"
                    assert fetched.status == "ok"
                    valid += 1
            contended = store.get(CONTENDED_HASH)
            if contended is not None:
                assert contended.name == "contended"
        queue.put(("ok", (valid, misses, store.stats.quarantined)))
    except BaseException as exc:  # pragma: no cover - failure path
        queue.put(("error", f"reader {reader_index}: {exc!r}"))


def _corrupt_reader_main(root: str, job_hash: str, barrier, queue) -> None:
    store = ResultStore(root)
    try:
        barrier.wait()
        fetched = store.get(job_hash)
        queue.put(("ok", (fetched is None, store.stats.quarantined)))
    except BaseException as exc:  # pragma: no cover - failure path
        queue.put(("error", repr(exc)))


def _drain(queue, expected: int):
    outcomes = []
    for _ in range(expected):
        kind, payload = queue.get(timeout=60)
        if kind == "error":
            pytest.fail(payload)
        outcomes.append(payload)
    return outcomes


class TestConcurrentAccess:
    def test_writers_and_readers_share_one_root(self, tmp_path):
        """N writers + M readers on one root: no lost or torn records."""
        root = str(tmp_path)
        total = WRITERS * RECORDS_PER_WRITER
        queue = _CTX.Queue()
        writers = [_CTX.Process(target=_writer_main,
                                args=(root, writer_index, queue))
                   for writer_index in range(WRITERS)]
        readers = [_CTX.Process(target=_reader_main,
                                args=(root, reader_index, total, queue))
                   for reader_index in range(READERS)]
        for process in writers + readers:
            process.start()
        outcomes = _drain(queue, WRITERS + READERS)
        for process in writers + readers:
            process.join(timeout=60)
            assert process.exitcode == 0
        # No reader ever quarantined anything: every read raced into
        # either a full record or a clean miss.
        reader_outcomes = [outcome for outcome in outcomes
                           if isinstance(outcome, tuple) and len(outcome) == 3]
        assert len(reader_outcomes) == READERS
        assert all(quarantined == 0
                   for _, _, quarantined in reader_outcomes)
        # No lost records: every write that happened is readable afterwards.
        store = ResultStore(root)
        for index in range(total):
            fetched = store.get(f"{index:064x}")
            assert fetched is not None, f"record {index} was lost"
        assert store.get(CONTENDED_HASH) is not None
        assert store.disk_stats()["entries"] == total + 1

    def test_prune_races_concurrent_writers(self, tmp_path):
        """Pruning under write load neither crashes nor corrupts."""
        root = str(tmp_path)
        queue = _CTX.Queue()
        writers = [_CTX.Process(target=_writer_main,
                                args=(root, writer_index, queue))
                   for writer_index in range(2)]
        for process in writers:
            process.start()
        store = ResultStore(root)
        for _ in range(10):
            store.prune(max_total_bytes=4096)
        _drain(queue, 2)
        for process in writers:
            process.join(timeout=60)
        report = store.prune(max_total_bytes=0)
        # Everything the final prune saw was a valid record it could evict;
        # the root is empty afterwards apart from quarantine/lock files.
        assert store.disk_stats()["entries"] == 0
        assert report.kept == 0


class TestQuarantineUnderFaults:
    def test_racing_readers_quarantine_a_corrupt_record_once(self, tmp_path):
        """Many processes hitting one corrupt record: one quarantine move,
        zero crashes, every reader sees a clean miss."""
        root = str(tmp_path)
        record = _result(7)
        ResultStore(root).put(record)
        queue = _CTX.Queue()
        barrier = _CTX.Barrier(READERS + 1)
        faults.configure([FaultSpec("store-corrupt", probability=1.0)])
        try:
            readers = [_CTX.Process(target=_corrupt_reader_main,
                                    args=(root, record.job_hash, barrier,
                                          queue))
                       for _ in range(READERS + 1)]
            for process in readers:
                process.start()
            outcomes = _drain(queue, READERS + 1)
            for process in readers:
                process.join(timeout=60)
                assert process.exitcode == 0
        finally:
            faults.disable()
        assert all(missed for missed, _ in outcomes)
        # Exactly one mover won the non-blocking maintenance lock; the
        # corrupt record is out of the hot path either way.
        store = ResultStore(root)
        assert store.quarantine_count() == 1
        assert store.get(record.job_hash) is None
        assert not os.path.exists(
            os.path.join(root, record.job_hash[:2],
                         f"{record.job_hash}.json"))
