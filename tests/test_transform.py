"""Unit tests for the program transformations."""

import pytest

from repro.lang import ast
from repro.lang import builder as B
from repro.lang.distributions import Uniform
from repro.lang.errors import AnalysisError
from repro.lang.transform import (
    clone_command,
    counter_as_resource,
    command_modified_variables,
    inline_calls,
    is_loop_free,
    max_sampling_range,
    modified_variables,
    program_size,
    rename_variables,
)


class TestClone:
    def test_clone_gets_fresh_node_ids(self):
        original = B.while_("x > 0", B.assign("x", "x - 1"), B.tick(1))
        cloned = clone_command(original)
        original_ids = {node.node_id for node in original.iter_nodes()}
        cloned_ids = {node.node_id for node in cloned.iter_nodes()}
        assert original_ids.isdisjoint(cloned_ids)

    def test_clone_preserves_structure(self):
        original = B.seq(B.prob("1/2", B.tick(1), B.skip()),
                         B.if_("x > 0", B.assign("x", "0")))
        cloned = clone_command(original)
        assert type(cloned) is type(original)
        assert len(list(cloned.iter_nodes())) == len(list(original.iter_nodes()))

    def test_rename_variables(self):
        command = B.seq(B.assign("x", "x + y"), B.tick(B.expr("x")))
        renamed = rename_variables(command, {"x": "a"})
        assert renamed.assigned_variables() == {"a"}
        assert "a" in renamed.used_variables()
        assert "y" in renamed.used_variables()


class TestInlining:
    def test_simple_inline(self):
        program = B.program(
            B.proc("main", ["x"], B.while_("x > 0", B.call("step"))),
            B.proc("step", [], B.assign("x", "x - 1"), B.tick(1)))
        inlined = inline_calls(program)
        assert not any(isinstance(node, ast.Call) for node in inlined.iter_nodes())
        # The inlined body still contains the tick from the callee.
        assert any(isinstance(node, ast.Tick)
                   for node in inlined.main_procedure.body.iter_nodes())

    def test_nested_inline(self):
        program = B.program(
            B.proc("main", [], B.call("a")),
            B.proc("a", [], B.call("b")),
            B.proc("b", [], B.tick(1)))
        inlined = inline_calls(program)
        assert not any(isinstance(node, ast.Call)
                       for node in inlined.main_procedure.body.iter_nodes())

    def test_recursive_calls_left_alone(self):
        program = B.program(
            B.proc("main", [], B.call("rec")),
            B.proc("rec", [], B.if_("x > 0", B.seq(B.assign("x", "x - 1"), B.call("rec")))))
        inlined = inline_calls(program)
        calls = [node for node in inlined.iter_nodes() if isinstance(node, ast.Call)]
        assert calls and all(call.procedure == "rec" for call in calls)

    def test_undefined_procedure(self):
        program = B.program(B.proc("main", [], B.call("ghost")))
        with pytest.raises(AnalysisError):
            inline_calls(program)


class TestModifiedVariables:
    def test_transitive(self):
        program = B.program(
            B.proc("main", [], B.call("a")),
            B.proc("a", [], B.assign("x", "1"), B.call("b")),
            B.proc("b", [], B.sample("y", Uniform(0, 1))))
        assert modified_variables(program, "a") == {"x", "y"}
        assert modified_variables(program, "main") == {"x", "y"}

    def test_recursive_termination(self):
        program = B.program(
            B.proc("main", [], B.call("rec")),
            B.proc("rec", [], B.assign("z", "z - 1"), B.call("rec")))
        assert modified_variables(program, "rec") == {"z"}

    def test_command_modified_variables(self):
        program = B.program(
            B.proc("main", [], B.seq(B.assign("a", "1"), B.call("p"))),
            B.proc("p", [], B.assign("b", "2")))
        assert command_modified_variables(
            program, program.main_procedure.body) == {"a", "b"}


class TestResourceCounter:
    def test_counter_increment_becomes_tick(self):
        program = B.program(B.proc("main", ["n"],
            B.while_("n > 0",
                B.assign("n", "n - 1"),
                B.assign("cost", "cost + n"))))
        converted = counter_as_resource(program, "cost")
        ticks = [node for node in converted.iter_nodes() if isinstance(node, ast.Tick)]
        assert len(ticks) == 1
        assert not ticks[0].is_constant

    def test_counter_initialisation_dropped(self):
        program = B.program(B.proc("main", [],
            B.assign("cost", "0"), B.assign("cost", "cost + 3")))
        converted = counter_as_resource(program, "cost")
        ticks = [node for node in converted.iter_nodes() if isinstance(node, ast.Tick)]
        assert len(ticks) == 1 and ticks[0].amount == 3

    def test_unsupported_counter_write_rejected(self):
        program = B.program(B.proc("main", [], B.assign("cost", "cost * 2")))
        with pytest.raises(AnalysisError):
            counter_as_resource(program, "cost")


class TestStructuralHelpers:
    def test_is_loop_free(self):
        assert is_loop_free(B.seq(B.tick(1), B.prob("1/2", B.tick(1), B.skip())))
        assert not is_loop_free(B.while_("x > 0", B.tick(1)))
        assert not is_loop_free(B.call("p"))

    def test_program_size(self, rdwalk_program):
        assert program_size(rdwalk_program) > 3

    def test_max_sampling_range(self):
        command = B.seq(B.incr_sample("x", Uniform(0, 10)), B.assign("y", "y + 3"))
        assert max_sampling_range(command) == 10
