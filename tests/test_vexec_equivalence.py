"""Equivalence suite: the vectorised batch executor vs the scalar oracle.

The scalar closure interpreter (:mod:`repro.semantics.interp`) defines the
operational semantics; :mod:`repro.semantics.vexec` must agree with it

* **exactly** on deterministic programs (cost, final state, step count,
  termination/assertion flags, for every lane),
* **in distribution** on probabilistic programs (means within a few
  standard errors; the per-lane streams necessarily differ from the
  scalar interpreter's single shared stream),

and its results must be bit-reproducible independent of the batch split.
Both properties are checked over the whole benchmark registry, which is
how the Figure 8 / Appendix F data can be regenerated on the fast path
without changing what the figures claim.
"""

from fractions import Fraction

import numpy as np
import pytest

from repro.bench.registry import all_benchmarks
from repro.lang import ast
from repro.lang import builder as B
from repro.lang.distributions import Bernoulli, Binomial, Finite, Uniform
from repro.lang.errors import EvaluationError
from repro.semantics.interp import (
    AngelicScheduler,
    DemonicScheduler,
    Interpreter,
    RandomScheduler,
    Scheduler,
    run_program,
)
from repro.semantics.sampler import estimate_expected_cost, sample_costs
from repro.semantics.vexec import BatchResult, VecInterpreter, VectorisationError


def assert_lanes_match_scalar(program, initial_state=None, runs=4,
                              scheduler=None, max_steps=1_000_000):
    """Every vec lane must byte-equal the scalar run (deterministic programs)."""
    batch = VecInterpreter(program, scheduler=scheduler,
                           max_steps=max_steps).run_batch(
        initial_state, runs=runs, seed=0)
    scalar = run_program(program, initial_state, seed=0, scheduler=scheduler,
                         max_steps=max_steps)
    for lane in range(runs):
        result = batch.result_at(lane)
        assert result.cost == scalar.cost
        assert result.steps == scalar.steps
        assert result.terminated == scalar.terminated
        assert result.assertion_failed == scalar.assertion_failed
        assert result.state == scalar.state
    return batch, scalar


class TestDeterministicExactEquality:
    def test_countdown(self, deterministic_countdown):
        for x in (-3, 0, 1, 9):
            assert_lanes_match_scalar(deterministic_countdown, {"x": x})

    def test_arithmetic_div_mod_negatives(self):
        program = B.program(B.proc("main", ["a"],
            B.assign("b", "a / 2"),
            B.assign("c", "a % 3"),
            B.assign("d", "(a * a) - (b + c)"),
            B.tick(B.expr("b + c"))))
        for a in (7, -7, 0, 13):
            assert_lanes_match_scalar(program, {"a": a})

    def test_division_by_zero_raises_like_scalar(self):
        program = B.program(B.proc("main", [], B.assign("a", "1 / 0")))
        with pytest.raises(EvaluationError):
            VecInterpreter(program).run_batch(runs=2, seed=0)

    def test_comparisons_are_ints_in_arithmetic(self):
        # Scalar comparisons yield int 0/1; numpy bool arrays would turn
        # '+' into logical OR and make '-' raise.  (Built as raw AST: the
        # concrete syntax does not nest comparisons inside arithmetic.)
        a = ast.Var("a")
        lt3 = ast.BinOp("<", a, ast.Const(3))
        lt5 = ast.BinOp("<", a, ast.Const(5))
        in_range = ast.BinOp("and", ast.BinOp(">", a, ast.Const(0)),
                             ast.BinOp("<", a, ast.Const(9)))
        program = B.program(B.proc("main", ["a"],
            B.assign("c", ast.BinOp("+", lt3, lt5)),
            B.assign("d", ast.BinOp("-", lt5, lt3)),
            B.assign("e", ast.BinOp("*",
                ast.BinOp("+", in_range, ast.BinOp("==", a, ast.Const(1))),
                ast.Const(3))),
            B.tick(B.expr("c + d + e"))))
        for value in (0, 1, 4, 9):
            assert_lanes_match_scalar(program, {"a": value})

    def test_guard_short_circuit_protects_division(self):
        # The scalar interpreter short-circuits `&&`; the vectorised one
        # must narrow the right operand's lane mask the same way, or the
        # guarded division would fault on lanes where y == 0.
        program = B.program(B.proc("main", ["y"],
            B.if_("y != 0 && (10 / y) > 1", B.tick(1), B.tick(5))))
        for y in (0, 1, 9):
            assert_lanes_match_scalar(program, {"y": y})

    def test_nested_loops_and_if(self):
        program = B.program(B.proc("main", ["n"],
            B.while_("n > 0",
                B.assign("n", "n - 1"),
                B.assign("m", "n"),
                B.while_("m > 0",
                    B.assign("m", "m - 1"),
                    B.if_("m % 2 == 0", B.tick(2), B.tick(1))))))
        for n in (0, 1, 5):
            assert_lanes_match_scalar(program, {"n": n})

    def test_procedure_calls(self):
        program = B.program(
            B.proc("main", ["n"], B.while_("n > 0", B.call("dec"))),
            B.proc("dec", [], B.assign("n", "n - 1"), B.tick(2)))
        assert_lanes_match_scalar(program, {"n": 6})

    def test_fractional_ticks_stay_exact(self):
        program = B.program(B.proc("main", ["n"],
            B.while_("n > 0",
                B.tick(Fraction(1, 3)), B.tick(Fraction(1, 2)),
                B.assign("n", "n - 1"))))
        batch, scalar = assert_lanes_match_scalar(program, {"n": 6})
        assert scalar.cost == 5
        assert batch.cost_denominator == 6
        assert batch.cost_fractions()[0] == Fraction(5)

    def test_assert_and_assume_stop_lanes(self):
        program = B.program(B.proc("main", ["x"],
            B.tick(1), B.assert_("x > 3"), B.tick(5)))
        for x in (0, 4):
            assert_lanes_match_scalar(program, {"x": x})

    def test_abort_counts_cost_so_far(self):
        program = B.program(B.proc("main", [], B.tick(2), B.abort(), B.tick(9)))
        batch, scalar = assert_lanes_match_scalar(program)
        assert scalar.cost == 2 and scalar.assertion_failed

    def test_step_budget_per_lane(self):
        program = B.program(B.proc("main", [],
            B.assign("x", "1"), B.while_("x > 0", B.tick(1))))
        batch, scalar = assert_lanes_match_scalar(program, max_steps=777)
        assert not scalar.terminated
        assert batch.unfinished_runs == 4

    def test_demonic_and_angelic_schedulers(self):
        program = B.program(B.proc("main", [], B.nondet(B.tick(10), B.tick(1))))
        assert_lanes_match_scalar(program, scheduler=DemonicScheduler())
        assert_lanes_match_scalar(program, scheduler=AngelicScheduler())

    def test_star_guard_with_demonic_scheduler(self):
        program = B.program(B.proc("main", ["y"],
            B.while_(B.expr("y >= 100 && *"),
                B.assign("y", "y - 100"), B.tick(1))))
        batch, scalar = assert_lanes_match_scalar(
            program, {"y": 350}, scheduler=DemonicScheduler())
        assert scalar.cost == 3


class TestProbabilisticDistributionalAgreement:
    def _means_agree(self, program, state, runs=2000, max_steps=1_000_000):
        scalar = estimate_expected_cost(program, state, runs=runs, seed=11,
                                        max_steps=max_steps, engine="scalar")
        vec = estimate_expected_cost(program, state, runs=runs, seed=23,
                                     max_steps=max_steps, engine="vec")
        tolerance = 6.0 * (scalar.standard_error() ** 2
                           + vec.standard_error() ** 2) ** 0.5
        assert abs(scalar.mean - vec.mean) <= max(tolerance, 1e-9), \
            (scalar.mean, vec.mean, tolerance)
        return scalar, vec

    def test_geometric(self, geometric_program):
        scalar, vec = self._means_agree(geometric_program, None)
        assert vec.mean == pytest.approx(2.0, rel=0.15)

    def test_random_walk(self, simple_random_walk):
        scalar, vec = self._means_agree(simple_random_walk, {"x": 15})
        assert vec.mean == pytest.approx(30.0, rel=0.15)

    def test_distributions_match_exact_means(self):
        for distribution, mean in (
                (Uniform(0, 10), 5.0),
                (Bernoulli(Fraction(1, 4)), 0.25),
                (Binomial(8, Fraction(1, 2)), 4.0),
                (Finite({1: Fraction(1, 3), 4: Fraction(2, 3)}), 3.0)):
            program = B.program(B.proc("main", [],
                B.sample("k", distribution), B.tick(B.expr("k"))))
            batch = VecInterpreter(program).run_batch(runs=4000, seed=5)
            assert batch.costs().mean() == pytest.approx(mean, abs=0.15), \
                distribution

    def test_random_star_guard_is_fair(self):
        program = B.program(B.proc("main", [],
            B.nondet(B.tick(1), B.tick(0))))
        batch = VecInterpreter(program,
                               scheduler=RandomScheduler()).run_batch(
            runs=4000, seed=9)
        assert batch.costs().mean() == pytest.approx(0.5, abs=0.05)


class TestSeedStability:
    def test_results_independent_of_batch_size(self, simple_random_walk):
        executor = VecInterpreter(simple_random_walk)
        reference = executor.run_batch({"x": 12}, runs=96, seed=42,
                                       batch_size=96)
        for batch_size in (1, 7, 32, 96, 200):
            other = executor.run_batch({"x": 12}, runs=96, seed=42,
                                       batch_size=batch_size)
            assert np.array_equal(reference.cost_numerators,
                                  other.cost_numerators)
            assert np.array_equal(reference.steps, other.steps)

    def test_same_seed_same_results_across_executors(self, geometric_program):
        first = VecInterpreter(geometric_program).run_batch(runs=50, seed=3)
        second = VecInterpreter(geometric_program).run_batch(runs=50, seed=3)
        assert np.array_equal(first.cost_numerators, second.cost_numerators)

    def test_prefix_stability_when_extending_runs(self, geometric_program):
        # Lane i draws only from its own spawned stream, so the first 32
        # lanes of a 64-run batch are exactly the 32-run batch.
        executor = VecInterpreter(geometric_program)
        small = executor.run_batch(runs=32, seed=8)
        large = executor.run_batch(runs=64, seed=8)
        assert np.array_equal(small.cost_numerators,
                              large.cost_numerators[:32])


class TestVectorisationFallback:
    def test_fractional_constant_in_expression_is_rejected(self):
        guard = ast.BinOp("<", ast.Var("x"), ast.Const(Fraction(5, 2)))
        program = B.program(B.proc("main", ["x"],
            B.if_(guard, B.tick(1), B.tick(9))))
        with pytest.raises(VectorisationError):
            VecInterpreter(program)
        with pytest.raises(VectorisationError):
            sample_costs(program, {"x": 2}, runs=5, engine="vec")

    def test_auto_engine_falls_back_to_scalar(self):
        guard = ast.BinOp("<", ast.Var("x"), ast.Const(Fraction(5, 2)))
        program = B.program(B.proc("main", ["x"],
            B.if_(guard, B.tick(1), B.tick(9))))
        stats = estimate_expected_cost(program, {"x": 2}, runs=5, seed=0,
                                       engine="auto")
        assert stats.mean == 1.0      # 2 < 5/2: exact, not truncated
        assert stats.engine == "scalar"

    def test_custom_scheduler_rejected_only_when_needed(self):
        class EveryOther(Scheduler):
            def __init__(self):
                self.flag = False

            def choose(self, command, state, rng):
                self.flag = not self.flag
                return self.flag

        nondet = B.program(B.proc("main", [], B.nondet(B.tick(1), B.tick(2))))
        with pytest.raises(VectorisationError):
            VecInterpreter(nondet, scheduler=EveryOther())
        deterministic = B.program(B.proc("main", [], B.tick(1)))
        VecInterpreter(deterministic, scheduler=EveryOther())  # fine

    def test_unknown_engine_name(self, deterministic_countdown):
        with pytest.raises(ValueError):
            estimate_expected_cost(deterministic_countdown, {"x": 1},
                                   runs=1, engine="turbo")


class TestRegistryWideEquivalence:
    """Every Table 1 benchmark: vec equals (or statistically matches) scalar."""

    @staticmethod
    def _is_deterministic(program) -> bool:
        def expr_has_star(expr):
            if isinstance(expr, ast.Star):
                return True
            return any(expr_has_star(child) for child in expr.children())

        for node in program.iter_nodes():
            if isinstance(node, (ast.Sample, ast.ProbChoice, ast.NonDetChoice)):
                return False
            if isinstance(node, (ast.Assert, ast.Assume, ast.If, ast.While)) \
                    and expr_has_star(node.condition):
                return False
        return True

    # ("benchmark" as a parameter name would collide with the
    # pytest-benchmark plugin's fixture of the same name.)
    @pytest.mark.parametrize("bench",
                             all_benchmarks(),
                             ids=lambda b: b.name)
    def test_benchmark_equivalence(self, bench):
        program = bench.build_for_simulation()
        plan = bench.simulation
        if plan is None:
            pytest.skip("no simulation plan")
        state = plan.states()[0]
        max_steps = plan.max_steps
        if self._is_deterministic(program):
            assert_lanes_match_scalar(program, state, runs=3,
                                      max_steps=max_steps)
            return
        runs = 300
        scalar = estimate_expected_cost(program, state, runs=runs, seed=17,
                                        max_steps=max_steps, engine="scalar")
        vec = estimate_expected_cost(program, state, runs=runs, seed=29,
                                     max_steps=max_steps, engine="vec")
        assert vec.runs + vec.unfinished_runs == runs
        if scalar.runs == 0:
            assert vec.runs == 0
            return
        tolerance = 6.0 * (scalar.standard_error() ** 2
                           + vec.standard_error() ** 2) ** 0.5
        slack = max(tolerance, 0.02 * max(1.0, abs(scalar.mean)))
        assert abs(scalar.mean - vec.mean) <= slack, \
            (bench.name, scalar.mean, vec.mean, slack)


class TestOverflowGuards:
    """int64 lanes must fail loudly where the scalar oracle's Python ints
    would keep going -- silent wrapping would produce confidently wrong
    means."""

    def test_repeated_squaring_raises_instead_of_wrapping(self):
        program = B.program(B.proc("main", ["x", "n"],
            B.while_("n > 0",
                B.assign("x", "x * x"),
                B.assign("n", "n - 1"),
                B.tick(B.expr("x")))))
        scalar = run_program(program, {"x": 2, "n": 7}, seed=0)
        assert scalar.cost > 2 ** 63          # oracle: exact big ints
        with pytest.raises(EvaluationError, match="integer range"):
            VecInterpreter(program).run_batch({"x": 2, "n": 7}, runs=2, seed=0)

    def test_repeated_doubling_raises_instead_of_wrapping(self):
        program = B.program(B.proc("main", ["x", "n"],
            B.while_("n > 0",
                B.assign("x", "x + x"),
                B.assign("n", "n - 1"))))
        with pytest.raises(EvaluationError, match="integer range"):
            VecInterpreter(program).run_batch({"x": 1, "n": 70}, runs=2, seed=0)

    def test_huge_constant_tick_rejected_at_compile_time(self):
        program = B.program(B.proc("main", [], B.tick(2 ** 60)))
        with pytest.raises(VectorisationError, match="overflow"):
            VecInterpreter(program)

    def test_out_of_range_initial_state_rejected(self, deterministic_countdown):
        with pytest.raises(EvaluationError, match="integer range"):
            VecInterpreter(deterministic_countdown).run_batch(
                {"x": 2 ** 63}, runs=1, seed=0)

    def test_in_range_values_unaffected(self):
        program = B.program(B.proc("main", ["x"],
            B.assign("y", "x * x"), B.tick(B.expr("y"))))
        assert_lanes_match_scalar(program, {"x": 10 ** 6})

    def test_multiply_guard_ignores_masked_out_lanes(self):
        # Lanes that took the other branch may hold large values; the
        # overflow pre-check must only consider the lanes actually
        # executing the multiplication.
        program = B.program(B.proc("main", [],
            B.prob("1/2",
                   B.assign("big", str(2 ** 60)),
                   B.seq(B.assign("x", "3"), B.assign("y", "x * x"),
                         B.tick(B.expr("y"))))))
        batch = VecInterpreter(program).run_batch(runs=64, seed=0)
        assert batch.unfinished_runs == 0
        assert set(batch.costs()) <= {0.0, 9.0}

    def test_sample_multiplication_guarded(self):
        program = B.program(B.proc("main", ["x"],
            B.sample("x", Uniform(32, 32), base="x", op="*")))
        with pytest.raises(EvaluationError, match="integer range"):
            VecInterpreter(program).run_batch({"x": 2 ** 59}, runs=2, seed=0)
        # In-range products still match the oracle exactly.
        assert_lanes_match_scalar(program, {"x": 5})

    def test_tick_expression_times_scale_guarded(self):
        program = B.program(B.proc("main", ["x"],
            B.tick(Fraction(1, 4)),          # cost scale becomes 4
            B.tick(B.expr("x"))))            # x * 4 must be pre-checked
        with pytest.raises(EvaluationError, match="integer range"):
            VecInterpreter(program).run_batch({"x": 2 ** 60}, runs=2, seed=0)
        assert_lanes_match_scalar(program, {"x": 10})

    def test_auto_engine_retries_on_scalar_after_runtime_overflow(self):
        # The range guards are the *executor's* limitation, not the
        # program's error: engine='auto' must deliver the scalar result.
        program = B.program(B.proc("main", ["x", "n"],
            B.while_("n > 0",
                B.assign("x", "x * x"),
                B.assign("n", "n - 1")),
            B.tick(1)))
        stats = estimate_expected_cost(program, {"x": 2, "n": 7}, runs=3,
                                       seed=0, engine="auto")
        assert stats.runs == 3 and stats.mean == 1.0
        assert stats.engine == "scalar"     # runtime fallback is reported
        with pytest.raises(EvaluationError, match="integer range"):
            estimate_expected_cost(program, {"x": 2, "n": 7}, runs=3,
                                   seed=0, engine="vec")

    def test_overlarge_integral_constant_rejected_at_compile_time(self):
        program = B.program(B.proc("main", [], B.assign("x", str(10 ** 19))))
        with pytest.raises(VectorisationError, match="integer range"):
            VecInterpreter(program)
        # ...which lets engine='auto' fall back to the exact scalar path.
        stats = estimate_expected_cost(program, runs=2, seed=0, engine="auto")
        assert stats.runs == 2


class TestSeedSequenceInputs:
    def test_caller_seedsequence_is_not_mutated(self, geometric_program):
        base = np.random.SeedSequence(7)
        executor = VecInterpreter(geometric_program)
        first = executor.run_batch(runs=20, seed=base)
        second = executor.run_batch(runs=20, seed=base)
        assert base.n_children_spawned == 0
        assert np.array_equal(first.cost_numerators, second.cost_numerators)

    def test_spawn_seeds_repeatable_for_seedsequence_input(self):
        from repro.semantics.sampler import spawn_seeds

        base = np.random.SeedSequence(5)
        first = spawn_seeds(base, 3)
        second = spawn_seeds(base, 3)
        for a, b in zip(first, second):
            assert tuple(a.generate_state(2)) == tuple(b.generate_state(2))

    def test_extra_initial_state_variables_survive(self):
        program = B.program(B.proc("main", ["x"],
            B.while_("x > 0", B.assign("x", "x - 1"), B.tick(1))))
        batch = VecInterpreter(program).run_batch(
            {"x": 2, "extra": 9}, runs=2, seed=0)
        scalar = run_program(program, {"x": 2, "extra": 9}, seed=0)
        assert batch.result_at(0).state == scalar.state
        assert batch.result_at(0).state["extra"] == 9


class TestBatchResultShape:
    def test_empty_batch(self, deterministic_countdown):
        batch = VecInterpreter(deterministic_countdown).run_batch(
            {"x": 1}, runs=0, seed=0)
        assert isinstance(batch, BatchResult)
        assert batch.runs == 0
        assert batch.costs().shape == (0,)
        assert batch.unfinished_runs == 0

    def test_result_at_round_trip(self, deterministic_countdown):
        batch = VecInterpreter(deterministic_countdown).run_batch(
            {"x": 4}, runs=2, seed=0)
        result = batch.result_at(1)
        assert result.cost == Fraction(4)
        assert result.state["x"] == 0

    def test_finished_costs_excludes_budget_hits(self):
        program = B.program(B.proc("main", ["x"],
            B.if_("x > 0",
                  B.seq(B.assign("go", "1"), B.while_("go > 0", B.tick(1))),
                  B.tick(3))))
        executor = VecInterpreter(program, max_steps=100)
        finished = executor.run_batch({"x": 0}, runs=4, seed=0)
        assert finished.unfinished_runs == 0
        assert list(finished.finished_costs()) == [3.0] * 4
        stuck = executor.run_batch({"x": 1}, runs=4, seed=0)
        assert stuck.unfinished_runs == 4
        assert stuck.finished_costs().shape == (0,)
